package fft

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func maxAbsDiff(a, b []float64) float64 {
	max := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > max {
			max = d
		}
	}
	return max
}

func randSignal(n int, seed int64) (re, im []float64) {
	rng := rand.New(rand.NewSource(seed))
	re = make([]float64, n)
	im = make([]float64, n)
	for i := range re {
		re[i] = rng.NormFloat64()
		im[i] = rng.NormFloat64()
	}
	return re, im
}

// testLengths covers powers of two, the AGCM's 144 longitudes, primes and
// other awkward composites that exercise the Bluestein path.
var testLengths = []int{1, 2, 3, 4, 5, 7, 8, 12, 16, 45, 64, 90, 97, 128, 144, 180, 288}

func TestForwardMatchesNaiveDFT(t *testing.T) {
	for _, n := range testLengths {
		re, im := randSignal(n, int64(n))
		wantRe, wantIm := DFT(re, im)
		p := NewPlan(n)
		p.Forward(re, im)
		tol := 1e-9 * float64(n)
		if d := maxAbsDiff(re, wantRe); d > tol {
			t.Errorf("n=%d: real part differs from DFT by %g", n, d)
		}
		if d := maxAbsDiff(im, wantIm); d > tol {
			t.Errorf("n=%d: imag part differs from DFT by %g", n, d)
		}
	}
}

func TestInverseRoundTrip(t *testing.T) {
	for _, n := range testLengths {
		re, im := randSignal(n, int64(2*n+1))
		origRe := append([]float64(nil), re...)
		origIm := append([]float64(nil), im...)
		p := NewPlan(n)
		p.Forward(re, im)
		p.Inverse(re, im)
		tol := 1e-10 * float64(n+1)
		if d := maxAbsDiff(re, origRe); d > tol {
			t.Errorf("n=%d: round-trip real error %g", n, d)
		}
		if d := maxAbsDiff(im, origIm); d > tol {
			t.Errorf("n=%d: round-trip imag error %g", n, d)
		}
	}
}

func TestPlanReuseIsStateless(t *testing.T) {
	// Two transforms with the same plan must not interfere.
	p := NewPlan(144)
	re1, im1 := randSignal(144, 5)
	re2, im2 := randSignal(144, 6)
	want1Re, want1Im := DFT(re1, im1)
	p.Forward(re2, im2) // pollute scratch
	p.Forward(re1, im1)
	if d := maxAbsDiff(re1, want1Re); d > 1e-7 {
		t.Errorf("plan reuse corrupted real part: %g", d)
	}
	if d := maxAbsDiff(im1, want1Im); d > 1e-7 {
		t.Errorf("plan reuse corrupted imag part: %g", d)
	}
}

func TestLinearity(t *testing.T) {
	// Property: FFT(a*x + y) == a*FFT(x) + FFT(y).
	const n = 90
	f := func(seed int64, aRaw uint8) bool {
		a := float64(aRaw)/16 - 4
		xRe, xIm := randSignal(n, seed)
		yRe, yIm := randSignal(n, seed+1000)
		zRe := make([]float64, n)
		zIm := make([]float64, n)
		for i := 0; i < n; i++ {
			zRe[i] = a*xRe[i] + yRe[i]
			zIm[i] = a*xIm[i] + yIm[i]
		}
		p := NewPlan(n)
		p.Forward(xRe, xIm)
		p.Forward(yRe, yIm)
		p.Forward(zRe, zIm)
		for i := 0; i < n; i++ {
			if math.Abs(zRe[i]-(a*xRe[i]+yRe[i])) > 1e-8 {
				return false
			}
			if math.Abs(zIm[i]-(a*xIm[i]+yIm[i])) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestParsevalEnergyConservation(t *testing.T) {
	// Property: sum |x|^2 == (1/n) sum |X|^2.
	f := func(seed int64) bool {
		n := 144
		re, im := randSignal(n, seed)
		var timeE float64
		for i := range re {
			timeE += re[i]*re[i] + im[i]*im[i]
		}
		NewPlan(n).Forward(re, im)
		var freqE float64
		for i := range re {
			freqE += re[i]*re[i] + im[i]*im[i]
		}
		return math.Abs(timeE-freqE/float64(n)) < 1e-8*timeE+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestRealInputHasConjugateSymmetry(t *testing.T) {
	n := 144
	re, _ := randSignal(n, 99)
	im := make([]float64, n)
	NewPlan(n).Forward(re, im)
	for s := 1; s < n; s++ {
		if math.Abs(re[s]-re[n-s]) > 1e-9 || math.Abs(im[s]+im[n-s]) > 1e-9 {
			t.Fatalf("wavenumber %d breaks conjugate symmetry", s)
		}
	}
}

func TestImpulseTransformsToConstant(t *testing.T) {
	for _, n := range []int{8, 144} {
		re := make([]float64, n)
		im := make([]float64, n)
		re[0] = 1
		NewPlan(n).Forward(re, im)
		for s := 0; s < n; s++ {
			if math.Abs(re[s]-1) > 1e-12 || math.Abs(im[s]) > 1e-12 {
				t.Fatalf("n=%d: impulse spectrum not flat at s=%d: %g+%gi", n, s, re[s], im[s])
			}
		}
	}
}

func TestConstantTransformsToImpulse(t *testing.T) {
	n := 90
	re := make([]float64, n)
	im := make([]float64, n)
	for i := range re {
		re[i] = 2.5
	}
	NewPlan(n).Forward(re, im)
	if math.Abs(re[0]-2.5*float64(n)) > 1e-9 {
		t.Fatalf("DC component %g, want %g", re[0], 2.5*float64(n))
	}
	for s := 1; s < n; s++ {
		if math.Abs(re[s]) > 1e-9 || math.Abs(im[s]) > 1e-9 {
			t.Fatalf("non-DC leakage at s=%d", s)
		}
	}
}

func TestNewPlanPanicsOnZeroLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewPlan(0) did not panic")
		}
	}()
	NewPlan(0)
}

func TestForwardPanicsOnWrongLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Forward with wrong buffer length did not panic")
		}
	}()
	NewPlan(8).Forward(make([]float64, 7), make([]float64, 8))
}

func TestFlopsModel(t *testing.T) {
	if Flops(1) != 0 {
		t.Errorf("Flops(1) = %g, want 0", Flops(1))
	}
	if got, want := Flops(1024), 5.0*1024*10; got != want {
		t.Errorf("Flops(1024) = %g, want %g", got, want)
	}
	// Smooth composites take the mixed-radix path: standard cost model.
	if got, want := Flops(144), 5*144*math.Log2(144); math.Abs(got-want) > 1e-9 {
		t.Errorf("Flops(144) = %g, want %g (mixed-radix model)", got, want)
	}
	// A large prime must pay the Bluestein overhead: dearer than the next
	// power of two, but within a small constant factor.
	f97, f128 := Flops(97), Flops(128)
	if f97 <= f128 {
		t.Errorf("Flops(97)=%g should exceed Flops(128)=%g (Bluestein overhead)", f97, f128)
	}
	if f97 > 40*f128 {
		t.Errorf("Flops(97)=%g implausibly large", f97)
	}
	// The FFT model must beat direct convolution (n^2) at the AGCM's
	// n=144 — the premise of the paper's filter replacement.
	if Flops(144) >= 144*144 {
		t.Errorf("Flops(144)=%g not below convolution cost %d", Flops(144), 144*144)
	}
}

func TestFactorize(t *testing.T) {
	cases := map[int][]int{
		144: {2, 2, 2, 2, 3, 3},
		90:  {2, 3, 3, 5},
		97:  {97},
		1:   nil,
	}
	for n, want := range cases {
		got := factorize(n)
		if len(got) != len(want) {
			t.Errorf("factorize(%d) = %v, want %v", n, got, want)
			continue
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("factorize(%d) = %v, want %v", n, got, want)
			}
		}
	}
}

func TestPlanKindSelection(t *testing.T) {
	if NewPlan(128).kind() != kindRadix2 {
		t.Error("128 should use radix-2")
	}
	if NewPlan(144).kind() != kindMixed {
		t.Error("144 should use mixed-radix")
	}
	if NewPlan(97).kind() != kindBluestein {
		t.Error("97 should use Bluestein")
	}
}

func TestNEquals(t *testing.T) {
	if NewPlan(144).N() != 144 {
		t.Error("N() mismatch")
	}
}

func BenchmarkFFT144(b *testing.B) {
	p := NewPlan(144)
	re, im := randSignal(144, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Forward(re, im)
	}
}

func BenchmarkFFT128(b *testing.B) {
	p := NewPlan(128)
	re, im := randSignal(128, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Forward(re, im)
	}
}

func BenchmarkNaiveDFT144(b *testing.B) {
	re, im := randSignal(144, 1)
	for i := 0; i < b.N; i++ {
		DFT(re, im)
	}
}
