package fft_test

import (
	"fmt"
	"math"

	"agcm/internal/fft"
)

// A pure cosine of wavenumber 3 transforms to a pair of spectral lines.
func ExamplePlan_Forward() {
	const n = 16
	re := make([]float64, n)
	im := make([]float64, n)
	for k := 0; k < n; k++ {
		re[k] = math.Cos(2 * math.Pi * 3 * float64(k) / n)
	}
	fft.NewPlan(n).Forward(re, im)
	for s := 0; s < n; s++ {
		if math.Abs(re[s]) > 1e-9 {
			fmt.Printf("bin %d: %.1f\n", s, re[s])
		}
	}
	// Output:
	// bin 3: 8.0
	// bin 13: 8.0
}

// Real input needs only the half spectrum.
func ExampleRealPlan_Forward() {
	const n = 8
	x := []float64{1, 0, -1, 0, 1, 0, -1, 0} // wavenumber 2 cosine
	re := make([]float64, n/2+1)
	im := make([]float64, n/2+1)
	fft.NewRealPlan(n).Forward(x, re, im)
	fmt.Printf("bin 2: %.1f%+.1fi\n", re[2], im[2])
	// Output:
	// bin 2: 4.0+0.0i
}
