package fft

import (
	"fmt"
	"math"
)

// RealPlan transforms real sequences of even length n through a complex
// plan of length n/2 (the standard packing trick), producing the
// half-complex spectrum X[0..n/2].  Latitude circles are real, so the
// filtering inner loop uses this plan at roughly half the cost of the
// complex route.
type RealPlan struct {
	n    int
	half *Plan
	// Unpack twiddles e^{-2*pi*i*s/n} for s = 0..n/2.
	twRe, twIm []float64
	// Scratch for the packed signal.
	zRe, zIm []float64
}

// NewRealPlan creates a real-input plan for even length n >= 2.
func NewRealPlan(n int) *RealPlan {
	if n < 2 || n%2 != 0 {
		panic(fmt.Sprintf("fft: real plan needs even n >= 2, got %d", n))
	}
	m := n / 2
	p := &RealPlan{
		n:    n,
		half: NewPlan(m),
		twRe: make([]float64, m+1),
		twIm: make([]float64, m+1),
		zRe:  make([]float64, m),
		zIm:  make([]float64, m),
	}
	for s := 0; s <= m; s++ {
		ang := -2 * math.Pi * float64(s) / float64(n)
		p.twRe[s] = math.Cos(ang)
		p.twIm[s] = math.Sin(ang)
	}
	return p
}

// N returns the real transform length.
func (p *RealPlan) N() int { return p.n }

// Forward computes the half-complex spectrum of the real sequence x:
// re[s] + i*im[s] = sum_k x[k] exp(-2*pi*i*k*s/n) for s = 0..n/2.
// re and im must have length n/2+1; im[0] and im[n/2] come out zero.
func (p *RealPlan) Forward(x []float64, re, im []float64) {
	m := p.n / 2
	if len(x) != p.n || len(re) != m+1 || len(im) != m+1 {
		panic("fft: real Forward length mismatch")
	}
	// Pack even/odd samples into a complex signal.
	for k := 0; k < m; k++ {
		p.zRe[k] = x[2*k]
		p.zIm[k] = x[2*k+1]
	}
	p.half.Forward(p.zRe, p.zIm)
	// Unpack: with E, O the DFTs of the even and odd subsequences,
	// Z[s] = E[s] + i O[s]; X[s] = E[s] + w^s O[s].
	for s := 0; s <= m; s++ {
		sm := (m - s) % m
		zr, zi := p.zRe[s%m], p.zIm[s%m]
		zcr, zci := p.zRe[sm], -p.zIm[sm]
		er := 0.5 * (zr + zcr)
		ei := 0.5 * (zi + zci)
		or := 0.5 * (zi - zci)  // O = (Z - conj(Zm))/(2i):
		oi := -0.5 * (zr - zcr) // real and imaginary parts
		wr, wi := p.twRe[s], p.twIm[s]
		re[s] = er + wr*or - wi*oi
		im[s] = ei + wr*oi + wi*or
	}
	im[0] = 0
	im[m] = 0
}

// Inverse reconstructs the real sequence from its half-complex spectrum,
// with the usual 1/n normalization so Inverse(Forward(x)) == x.
func (p *RealPlan) Inverse(re, im []float64, x []float64) {
	m := p.n / 2
	if len(x) != p.n || len(re) != m+1 || len(im) != m+1 {
		panic("fft: real Inverse length mismatch")
	}
	// Repack: Z[s] = E[s] + i O[s] with E, O recovered from X via
	// E[s] = (X[s] + conj(X[m-s]))/2, w^s O[s] = (X[s] - conj(X[m-s]))/2.
	for s := 0; s < m; s++ {
		sm := m - s
		xr, xi := re[s], im[s]
		ycr, yci := re[sm], -im[sm]
		er := 0.5 * (xr + ycr)
		ei := 0.5 * (xi + yci)
		dr := 0.5 * (xr - ycr)
		di := 0.5 * (xi - yci)
		// O[s] = conj(w^s) * d.
		wr, wi := p.twRe[s], -p.twIm[s]
		or := wr*dr - wi*di
		oi := wr*di + wi*dr
		p.zRe[s] = er - oi
		p.zIm[s] = ei + or
	}
	p.half.Inverse(p.zRe, p.zIm)
	for k := 0; k < m; k++ {
		x[2*k] = p.zRe[k]
		x[2*k+1] = p.zIm[k]
	}
}
