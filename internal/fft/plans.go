package fft

import "sync"

// Plans is a concurrency-safe registry of reusable transform plans keyed by
// length.  A Plan is not safe for concurrent use, so the registry hands out
// *exclusive ownership*: Get removes a plan from the pool (building one on a
// miss) and only the caller may use it until it is returned with Put.  This
// lets many simulated ranks — each its own goroutine — share one warm pool
// without ever sharing a live plan, and makes repeated plan churn (e.g. the
// sequential filter oracle planning per call) allocation-free at steady
// state.
type Plans struct {
	mu   sync.Mutex
	free map[int][]*Plan
}

// NewPlans creates an empty plan registry.
func NewPlans() *Plans {
	return &Plans{free: make(map[int][]*Plan)}
}

// Get returns a plan for length n, reusing a pooled one when available.
// The caller owns the plan exclusively until Put.
func (ps *Plans) Get(n int) *Plan {
	ps.mu.Lock()
	if free := ps.free[n]; len(free) > 0 {
		p := free[len(free)-1]
		free[len(free)-1] = nil
		ps.free[n] = free[:len(free)-1]
		ps.mu.Unlock()
		return p
	}
	ps.mu.Unlock()
	return NewPlan(n)
}

// Put returns a plan to the pool for reuse.  The caller must not use p
// afterwards.  Put(nil) is a no-op.
func (ps *Plans) Put(p *Plan) {
	if p == nil {
		return
	}
	ps.mu.Lock()
	ps.free[p.n] = append(ps.free[p.n], p)
	ps.mu.Unlock()
}

// RealPlans is the RealPlan counterpart of Plans: a concurrency-safe pool of
// real-input plans keyed by length, with exclusive-ownership Get/Put.
type RealPlans struct {
	mu   sync.Mutex
	free map[int][]*RealPlan
}

// NewRealPlans creates an empty real-plan registry.
func NewRealPlans() *RealPlans {
	return &RealPlans{free: make(map[int][]*RealPlan)}
}

// Get returns a real-input plan for even length n, reusing a pooled one when
// available.  The caller owns the plan exclusively until Put.
func (ps *RealPlans) Get(n int) *RealPlan {
	ps.mu.Lock()
	if free := ps.free[n]; len(free) > 0 {
		p := free[len(free)-1]
		free[len(free)-1] = nil
		ps.free[n] = free[:len(free)-1]
		ps.mu.Unlock()
		return p
	}
	ps.mu.Unlock()
	return NewRealPlan(n)
}

// Put returns a real-input plan to the pool.  The caller must not use p
// afterwards.  Put(nil) is a no-op.
func (ps *RealPlans) Put(p *RealPlan) {
	if p == nil {
		return
	}
	ps.mu.Lock()
	ps.free[p.n] = append(ps.free[p.n], p)
	ps.mu.Unlock()
}

// sharedPlans / sharedRealPlans back the package-level GetPlan/PutPlan
// convenience API used by the filter package.
var (
	sharedPlans     = NewPlans()
	sharedRealPlans = NewRealPlans()
)

// GetPlan fetches a plan for length n from the shared process-wide registry.
func GetPlan(n int) *Plan { return sharedPlans.Get(n) }

// PutPlan returns a plan obtained from GetPlan to the shared registry.
func PutPlan(p *Plan) { sharedPlans.Put(p) }

// GetRealPlan fetches a real-input plan for even length n from the shared
// process-wide registry.
func GetRealPlan(n int) *RealPlan { return sharedRealPlans.Get(n) }

// PutRealPlan returns a real-input plan obtained from GetRealPlan to the
// shared registry.
func PutRealPlan(p *RealPlan) { sharedRealPlans.Put(p) }
