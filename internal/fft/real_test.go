package fft

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRealForwardMatchesComplex(t *testing.T) {
	for _, n := range []int{2, 4, 8, 10, 36, 90, 144} {
		x, _ := randSignal(n, int64(n))
		// Complex reference.
		cre := append([]float64(nil), x...)
		cim := make([]float64, n)
		NewPlan(n).Forward(cre, cim)
		// Real route.
		m := n / 2
		re := make([]float64, m+1)
		im := make([]float64, m+1)
		NewRealPlan(n).Forward(x, re, im)
		for s := 0; s <= m; s++ {
			if math.Abs(re[s]-cre[s]) > 1e-9 || math.Abs(im[s]-cim[s]) > 1e-9 {
				t.Fatalf("n=%d s=%d: real route (%g,%g) vs complex (%g,%g)",
					n, s, re[s], im[s], cre[s], cim[s])
			}
		}
	}
}

func TestRealRoundTrip(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := (int(nRaw)%100 + 1) * 2
		x, _ := randSignal(n, seed)
		orig := append([]float64(nil), x...)
		p := NewRealPlan(n)
		m := n / 2
		re := make([]float64, m+1)
		im := make([]float64, m+1)
		p.Forward(x, re, im)
		p.Inverse(re, im, x)
		for i := range x {
			if math.Abs(x[i]-orig[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestRealPlanEdgeBinsAreReal(t *testing.T) {
	n := 144
	x, _ := randSignal(n, 7)
	re := make([]float64, n/2+1)
	im := make([]float64, n/2+1)
	NewRealPlan(n).Forward(x, re, im)
	if im[0] != 0 || im[n/2] != 0 {
		t.Fatalf("DC/Nyquist bins not real: %g, %g", im[0], im[n/2])
	}
}

func TestNewRealPlanRejectsOddLengths(t *testing.T) {
	for _, n := range []int{0, 1, 3, 7} {
		n := n
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewRealPlan(%d) did not panic", n)
				}
			}()
			NewRealPlan(n)
		}()
	}
}

func TestRealPlanLengthChecks(t *testing.T) {
	p := NewRealPlan(8)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on wrong buffer lengths")
		}
	}()
	p.Forward(make([]float64, 8), make([]float64, 4), make([]float64, 5))
}

func BenchmarkRealFFT144(b *testing.B) {
	p := NewRealPlan(144)
	x, _ := randSignal(144, 1)
	re := make([]float64, 73)
	im := make([]float64, 73)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Forward(x, re, im)
	}
}
