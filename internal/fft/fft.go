// Package fft implements the fast Fourier transforms used by the spectral
// filtering module: an iterative radix-2 complex FFT for power-of-two
// lengths and Bluestein's chirp-z algorithm for arbitrary lengths (the AGCM's
// 2°x2.5° grid has 144 longitudes, which is not a power of two).
//
// Plans precompute twiddle factors and scratch storage so the per-row cost in
// the filtering inner loop is allocation free.  The package also exposes the
// standard 5*n*log2(n) flop-count model, which the simulator charges to the
// virtual clock when the parallel filter runs FFTs.
package fft

import (
	"fmt"
	"math"
	"math/bits"
)

// maxMixedRadixFactor is the largest prime factor handled by the mixed-radix
// kernel; lengths with a larger prime factor fall back to Bluestein.
const maxMixedRadixFactor = 37

// Plan holds the precomputed state for transforms of one length.
// A Plan is not safe for concurrent use; create one per goroutine.
type Plan struct {
	n int

	// Radix-2 state (used when n is a power of two).
	rev    []int     // bit-reversal permutation
	cosTab []float64 // twiddle cosines, one per butterfly distance level
	sinTab []float64

	// Mixed-radix state (used for smooth composite lengths such as the
	// AGCM's 144 longitudes = 2^4 * 3^2).
	factors []int     // prime factorization of n, ascending
	twRe    []float64 // full twiddle table W_n^j
	twIm    []float64
	mrRe    []float64 // combine scratch
	mrIm    []float64

	// Bluestein state (used when n has a prime factor > maxMixedRadixFactor).
	m         int // power-of-two convolution length >= 2n-1
	inner     *Plan
	chirpRe   []float64 // chirp a_k = exp(-i*pi*k^2/n)
	chirpIm   []float64
	bFFTRe    []float64 // FFT of the chirp filter b
	bFFTIm    []float64
	scratchRe []float64
	scratchIm []float64
}

// kind reports which kernel a plan uses.
func (p *Plan) kind() int {
	switch {
	case p.rev != nil:
		return kindRadix2
	case p.factors != nil:
		return kindMixed
	default:
		return kindBluestein
	}
}

const (
	kindRadix2 = iota
	kindMixed
	kindBluestein
)

// NewPlan creates a transform plan for length n >= 1.
func NewPlan(n int) *Plan {
	if n < 1 {
		panic(fmt.Sprintf("fft: invalid length %d", n))
	}
	p := &Plan{n: n}
	switch {
	case isPow2(n):
		p.initRadix2()
	case smooth(n):
		p.initMixedRadix()
	default:
		p.initBluestein()
	}
	return p
}

// factorize returns the ascending prime factorization of n.
func factorize(n int) []int {
	var fs []int
	for f := 2; f*f <= n; f++ {
		for n%f == 0 {
			fs = append(fs, f)
			n /= f
		}
	}
	if n > 1 {
		fs = append(fs, n)
	}
	return fs
}

// smooth reports whether every prime factor of n is at most
// maxMixedRadixFactor.
func smooth(n int) bool {
	fs := factorize(n)
	return fs[len(fs)-1] <= maxMixedRadixFactor
}

func (p *Plan) initMixedRadix() {
	n := p.n
	p.factors = factorize(n)
	p.twRe = make([]float64, n)
	p.twIm = make([]float64, n)
	for j := 0; j < n; j++ {
		ang := -2 * math.Pi * float64(j) / float64(n)
		p.twRe[j] = math.Cos(ang)
		p.twIm[j] = math.Sin(ang)
	}
	p.mrRe = make([]float64, n)
	p.mrIm = make([]float64, n)
}

// mixedRadix computes the forward DFT in place via recursive Cooley-Tukey
// decomposition over p.factors.
func (p *Plan) mixedRadix(re, im []float64) {
	outRe := p.mrRe[:p.n]
	outIm := p.mrIm[:p.n]
	p.mrRec(outRe, outIm, re, im, 0, 1, 0)
	copy(re, outRe)
	copy(im, outIm)
}

// mrRec writes into out the n'-point DFT of the strided input sequence
// in[off], in[off+stride], ..., where n' = n / product(factors[:fi]) is
// implied by len(out).
func (p *Plan) mrRec(outRe, outIm, inRe, inIm []float64, off, stride, fi int) {
	n := len(outRe)
	if n == 1 {
		outRe[0], outIm[0] = inRe[off], inIm[off]
		return
	}
	f := p.factors[fi]
	m := n / f
	// Recurse on the f decimated subsequences; subsequence r lands in
	// out[r*m : (r+1)*m].
	for r := 0; r < f; r++ {
		p.mrRec(outRe[r*m:(r+1)*m], outIm[r*m:(r+1)*m], inRe, inIm,
			off+r*stride, stride*f, fi+1)
	}
	// Combine: X[q + m*s] = sum_r W_ncur^{r*(q+m*s)} * Y_r[q].
	// Twiddles come from the full-length table: W_ncur^j == W_N^{j*mult}.
	// For a fixed q, the writes X[q+m*s] land exactly on the positions
	// Y_r[q] that were read, so a q-row is buffered before writing back
	// and the combine is in-place.
	mult := p.n / n
	var tr, ti [maxMixedRadixFactor + 1]float64
	for q := 0; q < m; q++ {
		for s := 0; s < f; s++ {
			k := q + m*s
			var sr, si float64
			for r := 0; r < f; r++ {
				idx := (r * k) % n * mult
				yr, yi := outRe[r*m+q], outIm[r*m+q]
				wr, wi := p.twRe[idx], p.twIm[idx]
				sr += yr*wr - yi*wi
				si += yr*wi + yi*wr
			}
			tr[s], ti[s] = sr, si
		}
		for s := 0; s < f; s++ {
			outRe[q+m*s], outIm[q+m*s] = tr[s], ti[s]
		}
	}
}

// N returns the transform length.
func (p *Plan) N() int { return p.n }

func isPow2(n int) bool { return n&(n-1) == 0 }

func (p *Plan) initRadix2() {
	n := p.n
	p.rev = make([]int, n)
	logN := bits.TrailingZeros(uint(n))
	for i := 0; i < n; i++ {
		p.rev[i] = int(bits.Reverse(uint(i)) >> (bits.UintSize - logN))
	}
	// Twiddles for each level: w_len^j for len = 2,4,...,n.
	p.cosTab = make([]float64, n)
	p.sinTab = make([]float64, n)
	// Layout: level with half-size h stores its h twiddles at offset h.
	for h := 1; h < n; h *= 2 {
		for j := 0; j < h; j++ {
			ang := -math.Pi * float64(j) / float64(h)
			p.cosTab[h+j] = math.Cos(ang)
			p.sinTab[h+j] = math.Sin(ang)
		}
	}
}

func (p *Plan) initBluestein() {
	n := p.n
	m := 1
	for m < 2*n-1 {
		m *= 2
	}
	p.m = m
	p.inner = NewPlan(m)
	p.chirpRe = make([]float64, n)
	p.chirpIm = make([]float64, n)
	for k := 0; k < n; k++ {
		// k^2 mod 2n keeps the angle argument small and exact.
		sq := (k * k) % (2 * n)
		ang := -math.Pi * float64(sq) / float64(n)
		p.chirpRe[k] = math.Cos(ang)
		p.chirpIm[k] = math.Sin(ang)
	}
	// b_k = conj(chirp_k) for k in (-n, n), wrapped into length m.
	bRe := make([]float64, m)
	bIm := make([]float64, m)
	for k := 0; k < n; k++ {
		bRe[k] = p.chirpRe[k]
		bIm[k] = -p.chirpIm[k]
		if k > 0 {
			bRe[m-k] = p.chirpRe[k]
			bIm[m-k] = -p.chirpIm[k]
		}
	}
	p.inner.Forward(bRe, bIm)
	p.bFFTRe = bRe
	p.bFFTIm = bIm
	p.scratchRe = make([]float64, m)
	p.scratchIm = make([]float64, m)
}

// Forward computes the in-place unnormalized DFT:
// X_s = sum_k x_k exp(-2*pi*i*k*s/n).
// re and im must each have length n.
func (p *Plan) Forward(re, im []float64) {
	p.checkLen(re, im)
	switch p.kind() {
	case kindRadix2:
		p.radix2(re, im)
	case kindMixed:
		p.mixedRadix(re, im)
	default:
		p.bluestein(re, im, false)
	}
}

// Inverse computes the in-place inverse DFT with 1/n normalization, so
// Inverse(Forward(x)) == x.
func (p *Plan) Inverse(re, im []float64) {
	p.checkLen(re, im)
	// Inverse via conjugation: IDFT(x) = conj(DFT(conj(x)))/n.
	for i := range im {
		im[i] = -im[i]
	}
	switch p.kind() {
	case kindRadix2:
		p.radix2(re, im)
	case kindMixed:
		p.mixedRadix(re, im)
	default:
		p.bluestein(re, im, false)
	}
	inv := 1 / float64(p.n)
	for i := range re {
		re[i] *= inv
		im[i] *= -inv
	}
}

func (p *Plan) checkLen(re, im []float64) {
	if len(re) != p.n || len(im) != p.n {
		panic(fmt.Sprintf("fft: plan length %d, buffers %d/%d", p.n, len(re), len(im)))
	}
}

// radix2 is the iterative Cooley-Tukey kernel.
func (p *Plan) radix2(re, im []float64) {
	n := p.n
	for i := 0; i < n; i++ {
		j := p.rev[i]
		if j > i {
			re[i], re[j] = re[j], re[i]
			im[i], im[j] = im[j], im[i]
		}
	}
	for h := 1; h < n; h *= 2 {
		for base := 0; base < n; base += 2 * h {
			for j := 0; j < h; j++ {
				c, s := p.cosTab[h+j], p.sinTab[h+j]
				a, b := base+j, base+j+h
				tr := re[b]*c - im[b]*s
				ti := re[b]*s + im[b]*c
				re[b] = re[a] - tr
				im[b] = im[a] - ti
				re[a] += tr
				im[a] += ti
			}
		}
	}
}

// bluestein evaluates the DFT of arbitrary length as a convolution with a
// chirp, using the inner power-of-two plan.
func (p *Plan) bluestein(re, im []float64, _ bool) {
	n, m := p.n, p.m
	aRe, aIm := p.scratchRe, p.scratchIm
	for i := range aRe {
		aRe[i], aIm[i] = 0, 0
	}
	for k := 0; k < n; k++ {
		aRe[k] = re[k]*p.chirpRe[k] - im[k]*p.chirpIm[k]
		aIm[k] = re[k]*p.chirpIm[k] + im[k]*p.chirpRe[k]
	}
	p.inner.Forward(aRe, aIm)
	for i := 0; i < m; i++ {
		r := aRe[i]*p.bFFTRe[i] - aIm[i]*p.bFFTIm[i]
		aIm[i] = aRe[i]*p.bFFTIm[i] + aIm[i]*p.bFFTRe[i]
		aRe[i] = r
	}
	// Inverse inner transform via conjugation.
	for i := 0; i < m; i++ {
		aIm[i] = -aIm[i]
	}
	p.inner.Forward(aRe, aIm)
	invM := 1 / float64(m)
	for k := 0; k < n; k++ {
		cr := aRe[k] * invM
		ci := -aIm[k] * invM
		re[k] = cr*p.chirpRe[k] - ci*p.chirpIm[k]
		im[k] = cr*p.chirpIm[k] + ci*p.chirpRe[k]
	}
}

// Flops returns the operation-count model for one complex FFT of length n,
// which the simulator charges to the virtual clock.  Power-of-two and
// smooth composite lengths (every AGCM grid length, e.g. 144 = 2^4*3^2)
// cost the standard 5*n*log2(n); lengths with a large prime factor cost the
// Bluestein route (three FFTs of length m >= 2n-1 plus O(n+m) multiplies),
// matching what the implementation actually does.
func Flops(n int) float64 {
	if n <= 1 {
		return 0
	}
	if isPow2(n) || smooth(n) {
		return 5 * float64(n) * math.Log2(float64(n))
	}
	m := 1
	for m < 2*n-1 {
		m *= 2
	}
	return 3*5*float64(m)*math.Log2(float64(m)) + 8*float64(m) + 12*float64(n)
}

// DFT computes the naive O(n^2) discrete Fourier transform; it exists as a
// test oracle for the fast transforms.
func DFT(re, im []float64) (outRe, outIm []float64) {
	n := len(re)
	outRe = make([]float64, n)
	outIm = make([]float64, n)
	for s := 0; s < n; s++ {
		var sr, si float64
		for k := 0; k < n; k++ {
			ang := -2 * math.Pi * float64(k) * float64(s) / float64(n)
			c, sn := math.Cos(ang), math.Sin(ang)
			sr += re[k]*c - im[k]*sn
			si += re[k]*sn + im[k]*c
		}
		outRe[s] = sr
		outIm[s] = si
	}
	return outRe, outIm
}
