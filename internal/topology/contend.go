package topology

import (
	"fmt"
	"sort"

	"agcm/internal/sim"
)

// Deterministic link contention.
//
// The simulator's ranks free-run on private virtual clocks, so there is no
// global event order during a run and shared busy-until link clocks cannot
// be maintained online without racing on the host scheduler.  Contention is
// therefore resolved the way trace-driven network simulators do it: after
// the run, the message log is sorted into a single deterministic order and
// replayed against per-link busy-until clocks.  Transfers that want the same
// link at the same virtual time serialize; the tie-break is (virtual start
// time, sender rank, message sequence number), which is a total order
// because a sender's sequence numbers are unique.

// Transfer is one off-rank message as logged by the simulator.
type Transfer struct {
	Src, Dst int
	Bytes    int
	// Start is the sender's virtual clock at injection.
	Start float64
	// Seq is the sender-local message sequence number.
	Seq int64
}

// TransfersFromEvents extracts the off-rank message traffic from a run's
// event log (sim.Machine.EnableEventLog before Run).  Self-sends never touch
// the wire and are excluded.
func TransfersFromEvents(events [][]sim.Event) []Transfer {
	var out []Transfer
	for src, evs := range events {
		for _, e := range evs {
			if e.Kind != sim.EventSend || e.Peer == src {
				continue
			}
			out = append(out, Transfer{
				Src: src, Dst: e.Peer, Bytes: e.Bytes,
				Start: e.Start, Seq: e.Seq,
			})
		}
	}
	return out
}

// LinkContention describes one link's load after replay.
type LinkContention struct {
	Link int    `json:"link"`
	Name string `json:"name"`
	// Transfers is the number of messages that crossed the link.
	Transfers int `json:"transfers"`
	// BusySeconds is the total time the link spent moving bytes.
	BusySeconds float64 `json:"busySeconds"`
	// StallSeconds is the total time transfers waited for this link while
	// it was busy with earlier traffic — the congestion the free-running
	// model does not charge.
	StallSeconds float64 `json:"stallSeconds"`
}

// ContentionReport is the result of replaying a run's traffic through the
// network's links with busy-until serialization.
type ContentionReport struct {
	// Transfers replayed (off-rank messages).
	Transfers int `json:"transfers"`
	// TotalStallSeconds sums every transfer's wait for busy links.
	TotalStallSeconds float64 `json:"totalStallSeconds"`
	// MaxStallSeconds is the worst single transfer's wait.
	MaxStallSeconds float64 `json:"maxStallSeconds"`
	// FinishSeconds is the virtual time the last byte left the last link.
	FinishSeconds float64 `json:"finishSeconds"`
	// Links holds per-link load and stall totals, indexed by link id.
	Links []LinkContention `json:"links"`
}

// MostContended returns the n links with the largest stall time, ties broken
// by link id, busiest first.
func (r *ContentionReport) MostContended(n int) []LinkContention {
	out := append([]LinkContention(nil), r.Links...)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].StallSeconds != out[j].StallSeconds {
			return out[i].StallSeconds > out[j].StallSeconds
		}
		return out[i].Link < out[j].Link
	})
	if n < len(out) {
		out = out[:n]
	}
	return out
}

// Contend replays transfers through the network's topology and placement,
// serializing on shared links.  Each transfer occupies every link of its
// dimension-ordered route for its serialization time (wormhole routing: the
// whole path is held while the message drains); a transfer arriving at a
// busy link waits until the link frees.  The replay order — (Start, Src,
// Seq) — is a pure function of the run's virtual times, so the report is
// bit-identical across runs and host schedules.
func (n *Network) Contend(transfers []Transfer) (*ContentionReport, error) {
	sorted := append([]Transfer(nil), transfers...)
	sort.SliceStable(sorted, func(i, j int) bool {
		a, b := sorted[i], sorted[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.Src != b.Src {
			return a.Src < b.Src
		}
		return a.Seq < b.Seq
	})

	rep := &ContentionReport{
		Transfers: len(sorted),
		Links:     make([]LinkContention, n.nlinks),
	}
	for l := range rep.Links {
		rep.Links[l] = LinkContention{Link: l, Name: n.topo.LinkName(l)}
	}

	busyUntil := make([]float64, n.nlinks)
	var path []int
	for _, t := range sorted {
		if t.Src < 0 || t.Src >= n.ranks || t.Dst < 0 || t.Dst >= n.ranks {
			return nil, fmt.Errorf("topology: transfer %d->%d outside %d ranks", t.Src, t.Dst, n.ranks)
		}
		path = n.topo.Route(n.place.Node(t.Src), n.place.Node(t.Dst), path[:0])
		if len(path) == 0 {
			continue
		}
		ser := float64(t.Bytes) / n.par.LinkBytesPerSec

		// The wormhole path is held end to end: the transfer starts when
		// the last of its links frees, and every link is busy until the
		// payload has drained.
		start := t.Start
		for _, l := range path {
			if busyUntil[l] > start {
				start = busyUntil[l]
			}
		}
		stall := start - t.Start
		end := start + ser
		for _, l := range path {
			lc := &rep.Links[l]
			lc.Transfers++
			lc.BusySeconds += ser
			lc.StallSeconds += stall
			busyUntil[l] = end
		}
		rep.TotalStallSeconds += stall
		if stall > rep.MaxStallSeconds {
			rep.MaxStallSeconds = stall
		}
		if end > rep.FinishSeconds {
			rep.FinishSeconds = end
		}
	}
	return rep, nil
}
