package topology

import (
	"math"
	"reflect"
	"testing"

	"agcm/internal/machine"
)

func TestFactorizations(t *testing.T) {
	cases := []struct{ n, x, y int }{
		{1, 1, 1}, {2, 2, 1}, {12, 4, 3}, {16, 4, 4}, {32, 8, 4}, {240, 16, 15}, {7, 7, 1},
	}
	for _, c := range cases {
		if x, y := factor2(c.n); x != c.x || y != c.y {
			t.Errorf("factor2(%d) = %dx%d, want %dx%d", c.n, x, y, c.x, c.y)
		}
	}
	cases3 := []struct{ n, x, y, z int }{
		{8, 2, 2, 2}, {64, 4, 4, 4}, {24, 4, 3, 2}, {30, 5, 3, 2}, {7, 7, 1, 1},
	}
	for _, c := range cases3 {
		if x, y, z := factor3(c.n); x != c.x || y != c.y || z != c.z {
			t.Errorf("factor3(%d) = %dx%dx%d, want %dx%dx%d", c.n, x, y, z, c.x, c.y, c.z)
		}
	}
}

func TestByName(t *testing.T) {
	if topo, err := ByName("none", "", 8); err != nil || topo != nil {
		t.Fatalf("ByName(none) = %v, %v; want nil, nil", topo, err)
	}
	topo, err := ByName("mesh:4x2", "", 8)
	if err != nil {
		t.Fatal(err)
	}
	if m, ok := topo.(*Mesh2D); !ok || m.NX != 4 || m.NY != 2 {
		t.Fatalf("ByName(mesh:4x2) = %v", topo)
	}
	if _, err := ByName("mesh:3x2", "", 8); err == nil {
		t.Fatal("mesh:3x2 for 8 nodes should fail")
	}
	if _, err := ByName("warp", "", 8); err == nil {
		t.Fatal("unknown topology should fail")
	}
	for name, want := range map[string]string{
		"Intel Paragon": "2-D mesh",
		"Cray T3D":      "3-D torus",
		"IBM SP-2":      "multistage switch",
	} {
		topo, err := Auto(name, 8)
		if err != nil {
			t.Fatalf("Auto(%q): %v", name, err)
		}
		if got := topo.Name(); len(got) < len(want) || got[:len(want)] != want {
			t.Errorf("Auto(%q) = %q, want %q...", name, got, want)
		}
	}
	if _, err := Auto("Connection Machine", 8); err == nil {
		t.Fatal("Auto on unknown machine should fail")
	}
}

// checkRoutes verifies the structural route invariants every topology must
// satisfy: empty self-routes, valid link ids, and consecutive links that
// chain head to tail from a's node to b's (mesh/torus only — the switch's
// links are stage wires, not node pairs).
func checkRouteIDs(t *testing.T, topo Topology) {
	t.Helper()
	n := topo.Nodes()
	for a := 0; a < n; a++ {
		if got := topo.Route(a, a, nil); len(got) != 0 {
			t.Fatalf("%s: Route(%d,%d) = %v, want empty", topo.Name(), a, a, got)
		}
		for b := 0; b < n; b++ {
			for _, l := range topo.Route(a, b, nil) {
				if l < 0 || l >= topo.NumLinks() {
					t.Fatalf("%s: Route(%d,%d) uses invalid link %d", topo.Name(), a, b, l)
				}
			}
		}
	}
}

func TestMeshRouting(t *testing.T) {
	m, err := NewMesh2D(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	// 2*((NX-1)*NY + NX*(NY-1)) directed links.
	if got, want := m.NumLinks(), 2*(3*3+4*2); got != want {
		t.Fatalf("NumLinks = %d, want %d", got, want)
	}
	checkRouteIDs(t, m)
	// Manhattan distance, X first: (0,0) -> (3,2) is 3 X-hops then 2 Y-hops.
	path := m.Route(m.node(0, 0), m.node(3, 2), nil)
	if len(path) != 5 {
		t.Fatalf("route length %d, want 5", len(path))
	}
	// The first three links are the +x row links registered first.
	wantPrefix := []int{
		m.reg.lookup(m.node(0, 0), m.node(1, 0)),
		m.reg.lookup(m.node(1, 0), m.node(2, 0)),
		m.reg.lookup(m.node(2, 0), m.node(3, 0)),
	}
	if !reflect.DeepEqual(path[:3], wantPrefix) {
		t.Fatalf("X-first prefix = %v, want %v", path[:3], wantPrefix)
	}
	// Reverse direction uses the opposite directed links: disjoint ids.
	rev := m.Route(m.node(3, 2), m.node(0, 0), nil)
	for _, l := range rev {
		for _, f := range path {
			if l == f {
				t.Fatalf("forward and reverse routes share directed link %d", l)
			}
		}
	}
}

func TestTorusRouting(t *testing.T) {
	to, err := NewTorus3D(4, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	checkRouteIDs(t, to)
	// Wraparound: x=0 -> x=3 on a 4-ring is one -x hop, not three +x hops.
	if got := to.Route(to.node(0, 0, 0), to.node(3, 0, 0), nil); len(got) != 1 {
		t.Fatalf("wrap route length %d, want 1", len(got))
	}
	// Tie on an even ring goes the positive way: 0 -> 2 on a 4-ring.
	path := to.Route(to.node(0, 0, 0), to.node(2, 0, 0), nil)
	if len(path) != 2 {
		t.Fatalf("tie route length %d, want 2", len(path))
	}
	if want := to.reg.lookup(to.node(0, 0, 0), to.node(1, 0, 0)); path[0] != want {
		t.Fatalf("tie should break +x: first link %d, want %d", path[0], want)
	}
	// Extent-2 Z dimension: one hop either way.
	if got := to.Route(to.node(0, 0, 0), to.node(0, 0, 1), nil); len(got) != 1 {
		t.Fatalf("z route length %d, want 1", len(got))
	}
	// Dimension order X, Y, Z: (1,2,1) from origin = 1 + 1 + 1 hops.
	if got := to.Route(to.node(0, 0, 0), to.node(1, 2, 1), nil); len(got) != 3 {
		t.Fatalf("diagonal route length %d, want 3", len(got))
	}
}

func TestRingStep(t *testing.T) {
	if ringStep(0, 1, 4) != 1 || ringStep(0, 3, 4) != -1 || ringStep(0, 2, 4) != 1 {
		t.Fatal("ringStep direction wrong")
	}
	if ringStep(2, 0, 5) != -1 || ringStep(0, 2, 5) != 1 {
		t.Fatal("ringStep on odd ring wrong")
	}
}

func TestMultistageRouting(t *testing.T) {
	s, err := NewMultistage(30, 8)
	if err != nil {
		t.Fatal(err)
	}
	if s.Stages != 2 || s.Width != 64 {
		t.Fatalf("30 nodes radix 8: %d stages width %d, want 2 stages width 64", s.Stages, s.Width)
	}
	checkRouteIDs(t, s)
	for a := 0; a < s.N; a++ {
		for b := 0; b < s.N; b++ {
			if a == b {
				continue
			}
			path := s.Route(a, b, nil)
			if len(path) != s.Stages {
				t.Fatalf("Route(%d,%d) length %d, want %d", a, b, len(path), s.Stages)
			}
			// The final wire is the destination's ejection port.
			if got, want := path[len(path)-1], (s.Stages-1)*s.Width+b; got != want {
				t.Fatalf("Route(%d,%d) last wire %d, want ejection port %d", a, b, got, want)
			}
		}
	}
	if _, err := NewMultistage(8, 3); err == nil {
		t.Fatal("non-power-of-two radix should fail")
	}
}

func checkBijection(t *testing.T, p Placement, n int) {
	t.Helper()
	seen := make([]bool, n)
	for r := 0; r < n; r++ {
		nd := p.Node(r)
		if nd < 0 || nd >= n || seen[nd] {
			t.Fatalf("%s: not a bijection at rank %d (node %d)", p.Name(), r, nd)
		}
		seen[nd] = true
	}
}

func TestPlacements(t *testing.T) {
	m, _ := NewMesh2D(4, 3)
	to, _ := NewTorus3D(4, 3, 2)
	s, _ := NewMultistage(12, 4)
	for _, topo := range []Topology{m, to, s} {
		for _, mk := range []func(Topology) (Placement, error){Snake, Blocked} {
			p, err := mk(topo)
			if err != nil {
				t.Fatalf("%s: %v", topo.Name(), err)
			}
			checkBijection(t, p, topo.Nodes())
		}
	}
	// Snake on a mesh keeps consecutive ranks on adjacent nodes.
	snake, _ := Snake(m)
	for r := 0; r+1 < m.Nodes(); r++ {
		if hops := len(m.Route(snake.Node(r), snake.Node(r+1), nil)); hops != 1 {
			t.Fatalf("snake ranks %d,%d are %d hops apart", r, r+1, hops)
		}
	}
	// Blocked on a 4x3 mesh: ranks 0-3 fill the 2x2 corner block.
	blocked, _ := Blocked(m)
	want := []int{m.node(0, 0), m.node(1, 0), m.node(0, 1), m.node(1, 1)}
	for r, nd := range want {
		if blocked.Node(r) != nd {
			t.Fatalf("blocked rank %d on node %d, want %d", r, blocked.Node(r), nd)
		}
	}

	if _, err := NewPermutation("bad", []int{0, 0, 2}); err == nil {
		t.Fatal("duplicate node should fail")
	}
	if _, err := NewPermutation("bad", []int{0, 3}); err == nil {
		t.Fatal("out-of-range node should fail")
	}

	p, err := PlacementByName("perm:3,2,1,0", m4(t, 2, 2))
	if err != nil {
		t.Fatal(err)
	}
	if p.Node(0) != 3 || p.Node(3) != 0 {
		t.Fatalf("perm placement wrong: %d, %d", p.Node(0), p.Node(3))
	}
	if _, err := PlacementByName("perm:0,1", m); err == nil {
		t.Fatal("short permutation should fail")
	}
	if _, err := PlacementByName("spiral", m); err == nil {
		t.Fatal("unknown placement should fail")
	}
	if p, err := PlacementByName("", m); err != nil || p.Name() != "row-major" {
		t.Fatalf("empty placement = %v, %v", p, err)
	}
}

func m4(t *testing.T, nx, ny int) *Mesh2D {
	t.Helper()
	m, err := NewMesh2D(nx, ny)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func testNetwork(t *testing.T) *Network {
	t.Helper()
	m, err := NewMesh2D(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	n, err := NewNetworkParams(m, RowMajor(), Params{
		BaseSeconds:       100e-6,
		HopSeconds:        10e-6,
		LinkBytesPerSec:   10e6,
		InjectBytesPerSec: 10e6,
	})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestNetworkRouteSeconds(t *testing.T) {
	n := testNetwork(t)
	// First send from an idle NIC: no queueing.
	// 0 -> 3 is 3 hops; 1000 bytes at 10 MB/s = 100 us serialization.
	got := n.RouteSeconds(0, 3, 1000, 0)
	want := 100e-6 + 3*10e-6 + 100e-6
	if math.Abs(got-want) > 1e-15 {
		t.Fatalf("RouteSeconds = %g, want %g", got, want)
	}
	if fs := n.FreeSeconds(0, 3, 1000); fs != want {
		t.Fatalf("FreeSeconds = %g, want %g", fs, want)
	}
	// Second send at the same instant queues behind the first's injection:
	// the NIC is busy for 100 us.
	got2 := n.RouteSeconds(0, 7, 1000, 0)
	want2 := 100e-6 + (100e-6 + 4*10e-6 + 100e-6)
	if math.Abs(got2-want2) > 1e-15 {
		t.Fatalf("queued RouteSeconds = %g, want %g", got2, want2)
	}
	// A send after the NIC drained sees no queue.
	got3 := n.RouteSeconds(0, 1, 1000, 1.0)
	want3 := 100e-6 + 1*10e-6 + 100e-6
	if math.Abs(got3-want3) > 1e-15 {
		t.Fatalf("idle RouteSeconds = %g, want %g", got3, want3)
	}

	stats := n.LinkStats()
	var msgs, bytes int64
	for _, s := range stats {
		msgs += s.Msgs
		bytes += s.Bytes
	}
	// 3 + 4 + 1 link crossings, 1000 bytes each.
	if msgs != 8 || bytes != 8000 {
		t.Fatalf("link stats total %d msgs %d bytes, want 8 msgs 8000 bytes", msgs, bytes)
	}
	n.ResetStats()
	for _, s := range n.LinkStats() {
		if s.Msgs != 0 || s.Bytes != 0 || s.BusySeconds != 0 {
			t.Fatalf("ResetStats left %+v", s)
		}
	}
}

func TestNetworkValidation(t *testing.T) {
	m, _ := NewMesh2D(2, 2)
	if _, err := NewNetworkParams(m, RowMajor(), Params{}); err == nil {
		t.Fatal("zero bandwidth should fail")
	}
	bad, _ := NewPermutation("bad-size", []int{0, 1})
	if _, err := NewNetworkParams(m, bad, Params{LinkBytesPerSec: 1, InjectBytesPerSec: 1}); err == nil {
		t.Fatal("undersized placement should fail")
	}
	mod := machine.Paragon()
	n, err := NewNetwork(m, nil, mod)
	if err != nil {
		t.Fatal(err)
	}
	if n.Placement().Name() != "row-major" {
		t.Fatal("nil placement should default to row-major")
	}
	p := n.Parameters()
	if p.BaseSeconds != mod.Latency || p.LinkBytesPerSec != mod.Bandwidth {
		t.Fatalf("DefaultParams not derived from model: %+v", p)
	}
}

func TestMeanHops(t *testing.T) {
	m, _ := NewMesh2D(2, 2)
	n, err := NewNetwork(m, RowMajor(), machine.Paragon())
	if err != nil {
		t.Fatal(err)
	}
	// 2x2 mesh: 8 ordered pairs at 1 hop, 4 at 2 hops -> mean 4/3.
	if got, want := n.MeanHops(), 4.0/3.0; math.Abs(got-want) > 1e-15 {
		t.Fatalf("MeanHops = %g, want %g", got, want)
	}
}

func TestContend(t *testing.T) {
	n := testNetwork(t)
	ser := 100e-6 // 1000 bytes at 10 MB/s

	// Two transfers both crossing link (1,0)->(2,0) at t=0: the later one
	// (tie broken by src) stalls for one serialization time.
	transfers := []Transfer{
		{Src: 1, Dst: 3, Bytes: 1000, Start: 0, Seq: 1},
		{Src: 0, Dst: 2, Bytes: 1000, Start: 0, Seq: 1},
	}
	rep, err := n.Contend(transfers)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Transfers != 2 {
		t.Fatalf("Transfers = %d", rep.Transfers)
	}
	if math.Abs(rep.TotalStallSeconds-ser) > 1e-15 {
		t.Fatalf("TotalStall = %g, want %g", rep.TotalStallSeconds, ser)
	}
	if math.Abs(rep.MaxStallSeconds-ser) > 1e-15 {
		t.Fatalf("MaxStall = %g, want %g", rep.MaxStallSeconds, ser)
	}
	// Last byte leaves at 2 serializations (second transfer queued).
	if math.Abs(rep.FinishSeconds-2*ser) > 1e-15 {
		t.Fatalf("Finish = %g, want %g", rep.FinishSeconds, 2*ser)
	}

	// The report is a pure function of the transfer set: input order must
	// not matter.
	rep2, err := n.Contend([]Transfer{transfers[1], transfers[0]})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep, rep2) {
		t.Fatal("Contend depends on input order")
	}

	// Disjoint routes never stall.
	rep3, err := n.Contend([]Transfer{
		{Src: 0, Dst: 1, Bytes: 1000, Start: 0, Seq: 1},
		{Src: 4, Dst: 5, Bytes: 1000, Start: 0, Seq: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep3.TotalStallSeconds != 0 {
		t.Fatalf("disjoint transfers stalled %g", rep3.TotalStallSeconds)
	}

	hot := rep.MostContended(1)
	if len(hot) != 1 || hot[0].StallSeconds == 0 {
		t.Fatalf("MostContended = %+v", hot)
	}

	if _, err := n.Contend([]Transfer{{Src: 0, Dst: 99, Bytes: 1, Seq: 1}}); err == nil {
		t.Fatal("out-of-range transfer should fail")
	}
}
