package topology

import (
	"fmt"
	"strconv"
	"strings"
)

// Placement maps simulator world ranks onto physical nodes.  The mapping
// must be a bijection from [0, Nodes) to [0, Nodes): every rank gets its own
// node, as on the paper's machines (one AGCM process per node).
type Placement interface {
	// Name identifies the policy in reports.
	Name() string
	// Node returns the physical node hosting the given world rank.
	Node(rank int) int
}

// rowMajor places rank r on node r — the submission-order default of
// space-sharing schedulers, and the layout under which the AGCM's row-major
// process mesh lines up with a row-major machine mesh.
type rowMajor struct{}

func (rowMajor) Name() string      { return "row-major" }
func (rowMajor) Node(rank int) int { return rank }

// RowMajor returns the identity placement.
func RowMajor() Placement { return rowMajor{} }

// permutation is an explicit rank -> node table; Snake, Blocked and
// user-supplied permutations all reduce to one.
type permutation struct {
	name  string
	nodes []int
}

func (p *permutation) Name() string { return p.name }
func (p *permutation) Node(rank int) int {
	if rank < 0 || rank >= len(p.nodes) {
		panic(fmt.Sprintf("topology: rank %d outside placement of %d nodes", rank, len(p.nodes)))
	}
	return p.nodes[rank]
}

// NewPermutation builds a placement from an explicit rank -> node table,
// validating that it is a bijection on [0, len(nodes)).
func NewPermutation(name string, nodes []int) (Placement, error) {
	seen := make([]bool, len(nodes))
	for r, n := range nodes {
		if n < 0 || n >= len(nodes) {
			return nil, fmt.Errorf("topology: placement maps rank %d to node %d outside [0,%d)", r, n, len(nodes))
		}
		if seen[n] {
			return nil, fmt.Errorf("topology: placement maps two ranks to node %d", n)
		}
		seen[n] = true
	}
	return &permutation{name: name, nodes: append([]int(nil), nodes...)}, nil
}

// Snake places consecutive ranks along a boustrophedon walk of the machine:
// odd rows (and planes) are traversed backwards, so rank r and rank r+1 are
// always physically adjacent — locality for neighbour exchange at the cost
// of folding distant ranks onto shared rows.  On a multistage switch every
// placement is distance-equivalent, so Snake degenerates to row-major.
func Snake(t Topology) (Placement, error) {
	switch m := t.(type) {
	case *Mesh2D:
		nodes := make([]int, 0, m.Nodes())
		for y := 0; y < m.NY; y++ {
			for i := 0; i < m.NX; i++ {
				x := i
				if y%2 == 1 {
					x = m.NX - 1 - i
				}
				nodes = append(nodes, m.node(x, y))
			}
		}
		return NewPermutation("snake", nodes)
	case *Torus3D:
		nodes := make([]int, 0, m.Nodes())
		for z := 0; z < m.NZ; z++ {
			for j := 0; j < m.NY; j++ {
				y := j
				if z%2 == 1 {
					y = m.NY - 1 - j
				}
				for i := 0; i < m.NX; i++ {
					x := i
					if (j+z)%2 == 1 {
						x = m.NX - 1 - i
					}
					nodes = append(nodes, m.node(x, y, z))
				}
			}
		}
		return NewPermutation("snake", nodes)
	case *Multistage:
		return &permutation{name: "snake", nodes: identity(t.Nodes())}, nil
	}
	return nil, fmt.Errorf("topology: no snake placement for %s", t.Name())
}

// Blocked tiles the machine into 2x2 (mesh) or 2x2x2 (torus) blocks and
// fills one block before moving to the next — the Hilbert-ish clustered
// layout: groups of four (eight) consecutive ranks share a corner of the
// machine, shortening their mutual routes while stretching block-to-block
// ones.  Odd extents leave ragged blocks, which are filled in the same
// order.  On a multistage switch it degenerates to row-major.
func Blocked(t Topology) (Placement, error) {
	switch m := t.(type) {
	case *Mesh2D:
		nodes := make([]int, 0, m.Nodes())
		for by := 0; by < m.NY; by += 2 {
			for bx := 0; bx < m.NX; bx += 2 {
				for y := by; y < by+2 && y < m.NY; y++ {
					for x := bx; x < bx+2 && x < m.NX; x++ {
						nodes = append(nodes, m.node(x, y))
					}
				}
			}
		}
		return NewPermutation("blocked", nodes)
	case *Torus3D:
		nodes := make([]int, 0, m.Nodes())
		for bz := 0; bz < m.NZ; bz += 2 {
			for by := 0; by < m.NY; by += 2 {
				for bx := 0; bx < m.NX; bx += 2 {
					for z := bz; z < bz+2 && z < m.NZ; z++ {
						for y := by; y < by+2 && y < m.NY; y++ {
							for x := bx; x < bx+2 && x < m.NX; x++ {
								nodes = append(nodes, m.node(x, y, z))
							}
						}
					}
				}
			}
		}
		return NewPermutation("blocked", nodes)
	case *Multistage:
		return &permutation{name: "blocked", nodes: identity(t.Nodes())}, nil
	}
	return nil, fmt.Errorf("topology: no blocked placement for %s", t.Name())
}

func identity(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// PlacementByName builds a placement policy from a command-line name:
// "rowmajor" (or "row-major"), "snake", "blocked", or an explicit
// permutation "perm:2,3,0,1" listing the node of every rank in rank order.
func PlacementByName(name string, t Topology) (Placement, error) {
	name = strings.ToLower(strings.TrimSpace(name))
	switch {
	case name == "" || name == "rowmajor" || name == "row-major":
		return RowMajor(), nil
	case name == "snake":
		return Snake(t)
	case name == "blocked":
		return Blocked(t)
	case strings.HasPrefix(name, "perm:"):
		fields := strings.Split(name[len("perm:"):], ",")
		if len(fields) != t.Nodes() {
			return nil, fmt.Errorf("topology: permutation lists %d nodes, machine has %d", len(fields), t.Nodes())
		}
		nodes := make([]int, len(fields))
		for i, f := range fields {
			v, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil {
				return nil, fmt.Errorf("topology: bad permutation entry %q: %v", f, err)
			}
			nodes[i] = v
		}
		return NewPermutation("perm", nodes)
	}
	return nil, fmt.Errorf("topology: unknown placement %q (rowmajor, snake, blocked, perm:n0,n1,...)", name)
}
