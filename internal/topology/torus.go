package topology

import "fmt"

// Torus3D is a 3-D torus — the Cray T3D interconnect.  Nodes are numbered
// x-fastest: node = (z*NY + y)*NX + x.  Every dimension wraps, so each node
// has directed links in both directions of every dimension whose extent
// exceeds one.
type Torus3D struct {
	NX, NY, NZ int
	reg        *linkRegistry
}

// NewTorus3D builds an NX x NY x NZ torus.
func NewTorus3D(nx, ny, nz int) (*Torus3D, error) {
	if nx < 1 || ny < 1 || nz < 1 {
		return nil, fmt.Errorf("topology: invalid torus extents %dx%dx%d", nx, ny, nz)
	}
	t := &Torus3D{NX: nx, NY: ny, NZ: nz, reg: newLinkRegistry()}
	// Register each dimension's rings in a fixed order.  An extent-1
	// dimension has no links; an extent-2 dimension has a single pair of
	// opposing channels between its two nodes.
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				n := t.node(x, y, z)
				if nx > 1 {
					t.reg.add(n, t.node((x+1)%nx, y, z))
					t.reg.add(n, t.node((x-1+nx)%nx, y, z))
				}
				if ny > 1 {
					t.reg.add(n, t.node(x, (y+1)%ny, z))
					t.reg.add(n, t.node(x, (y-1+ny)%ny, z))
				}
				if nz > 1 {
					t.reg.add(n, t.node(x, y, (z+1)%nz))
					t.reg.add(n, t.node(x, y, (z-1+nz)%nz))
				}
			}
		}
	}
	t.reg.check()
	return t, nil
}

func (t *Torus3D) node(x, y, z int) int { return (z*t.NY+y)*t.NX + x }

func (t *Torus3D) coords(n int) (x, y, z int) {
	return n % t.NX, (n / t.NX) % t.NY, n / (t.NX * t.NY)
}

// Name implements Topology.
func (t *Torus3D) Name() string { return fmt.Sprintf("3-D torus %dx%dx%d", t.NX, t.NY, t.NZ) }

// Nodes implements Topology.
func (t *Torus3D) Nodes() int { return t.NX * t.NY * t.NZ }

// NumLinks implements Topology.
func (t *Torus3D) NumLinks() int { return len(t.reg.ends) }

// LinkName implements Topology.
func (t *Torus3D) LinkName(id int) string {
	e := t.reg.ends[id]
	ax, ay, az := t.coords(e[0])
	bx, by, bz := t.coords(e[1])
	return fmt.Sprintf("(%d,%d,%d)->(%d,%d,%d)", ax, ay, az, bx, by, bz)
}

// Route implements Topology: dimension-ordered (X, then Y, then Z) routing,
// stepping each ring in its shortest direction (ties go the positive way) —
// the T3D's deterministic dimension-order discipline.
func (t *Torus3D) Route(a, b int, buf []int) []int {
	ax, ay, az := t.coords(a)
	bx, by, bz := t.coords(b)
	x, y, z := ax, ay, az
	for x != bx {
		nx := (x + ringStep(x, bx, t.NX) + t.NX) % t.NX
		buf = append(buf, t.reg.lookup(t.node(x, y, z), t.node(nx, y, z)))
		x = nx
	}
	for y != by {
		ny := (y + ringStep(y, by, t.NY) + t.NY) % t.NY
		buf = append(buf, t.reg.lookup(t.node(x, y, z), t.node(x, ny, z)))
		y = ny
	}
	for z != bz {
		nz := (z + ringStep(z, bz, t.NZ) + t.NZ) % t.NZ
		buf = append(buf, t.reg.lookup(t.node(x, y, z), t.node(x, y, nz)))
		z = nz
	}
	return buf
}

// ringStep returns +1 or -1: the direction of the shorter way around an
// n-node ring from cur to dst, preferring +1 on ties.
func ringStep(cur, dst, n int) int {
	fwd := (dst - cur + n) % n
	if 2*fwd <= n {
		return 1
	}
	return -1
}
