package topology

import (
	"fmt"
	"math/bits"
)

// Multistage is an omega-style multistage switch — the IBM SP-2's
// High-Performance Switch, built from small crossbars in log stages.  The
// network has Stages stages of Width wires each; a message from node a to
// node b follows the unique digit-correction path, occupying one wire per
// stage.  Unlike the mesh and torus, every node pair is the same distance
// apart, but paths still share interior wires, so congestion is real: the
// wire after the last stage is b's ejection port, where converging traffic
// (e.g. a gather root) serializes.
type Multistage struct {
	N      int // nodes actually attached
	Radix  int // crossbar radix (power of two)
	Stages int
	Width  int // wires per stage = Radix^Stages >= N
	shift  uint
}

// NewMultistage builds a switch for n nodes from radix-r crossbars.  The
// radix must be a power of two in [2, 16]; the wire count per stage is the
// smallest power of the radix covering n.
func NewMultistage(n, radix int) (*Multistage, error) {
	if n < 1 {
		return nil, fmt.Errorf("topology: invalid switch size %d", n)
	}
	if radix < 2 || radix > 16 || bits.OnesCount(uint(radix)) != 1 {
		return nil, fmt.Errorf("topology: switch radix %d must be a power of two in [2,16]", radix)
	}
	shift := uint(bits.TrailingZeros(uint(radix)))
	stages, width := 1, radix
	for width < n {
		stages++
		width <<= shift
	}
	return &Multistage{N: n, Radix: radix, Stages: stages, Width: width, shift: shift}, nil
}

// Name implements Topology.
func (s *Multistage) Name() string {
	return fmt.Sprintf("multistage switch %d-way (%d stages of radix %d)", s.N, s.Stages, s.Radix)
}

// Nodes implements Topology.
func (s *Multistage) Nodes() int { return s.N }

// NumLinks implements Topology.
func (s *Multistage) NumLinks() int { return s.Stages * s.Width }

// LinkName implements Topology.
func (s *Multistage) LinkName(id int) string {
	return fmt.Sprintf("stage %d wire %d", id/s.Width, id%s.Width)
}

// Route implements Topology: the omega network's digit-correction path.
// The wire leaving stage k carries the high digits of the destination and
// the not-yet-shifted-out low digits of the source; the wire after the last
// stage is exactly b, the destination's ejection port.
func (s *Multistage) Route(a, b int, buf []int) []int {
	if a == b {
		return buf
	}
	mask := s.Width - 1
	for k := 0; k < s.Stages; k++ {
		wire := ((a << (s.shift * uint(k+1))) & mask) | (b >> (s.shift * uint(s.Stages-1-k)))
		buf = append(buf, k*s.Width+wire)
	}
	return buf
}
