// Package topology models the physical interconnects of the paper's
// machines — the Intel Paragon's 2-D mesh, the Cray T3D's 3-D torus and the
// IBM SP-2's multistage switch — and makes rank placement and link
// contention first-class experimental variables.
//
// A Topology maps physical node indices to directed links and expands a
// (source node, destination node) pair into the link path taken by
// dimension-ordered wormhole routing.  A Placement maps simulator ranks onto
// physical nodes, so the same logical process mesh can be laid out
// differently on the hardware.  A Network combines the two with a machine
// model into a sim.RouteModel: per-message in-flight times that depend on
// hop count and injection-port pipelining, plus per-link byte and busy-time
// accounting.  A separate replay arbiter (Contend) serializes the logged
// transfers on shared links in virtual time with deterministic tie-breaking.
//
// Determinism: every method here is either a pure function of its arguments
// or touches only per-source-rank state from that rank's own goroutine, so
// simulated runs stay bit-identical no matter how the Go scheduler
// interleaves ranks (see the sim package's determinism contract).
package topology

import (
	"fmt"
	"strings"
)

// Topology describes one interconnect: a set of physical nodes joined by
// directed links, plus the deterministic route between any node pair.
type Topology interface {
	// Name identifies the topology in reports, e.g. "2-D mesh 8x4".
	Name() string
	// Nodes returns the number of physical nodes.
	Nodes() int
	// NumLinks returns the number of directed links; link ids are dense in
	// [0, NumLinks).
	NumLinks() int
	// LinkName describes a link id for reports, e.g. "(2,1)->(3,1)".
	LinkName(id int) string
	// Route appends the directed link ids of the canonical (dimension-
	// ordered) path from node a to node b to buf and returns it.  The
	// route for a == b is empty.  Route must be a pure function.
	Route(a, b int, buf []int) []int
}

// ByName builds a topology from a command-line name for a machine with the
// given node count.  Accepted names:
//
//	none            no topology (callers should skip the route model)
//	mesh            2-D mesh, near-square factorization (Paragon)
//	torus           3-D torus, near-cubic factorization (T3D)
//	switch          multistage crossbar switch (SP-2)
//	auto            pick by machine model name (see Auto)
//
// Explicit extents are accepted as mesh:XxY and torus:XxYxZ.
func ByName(name, machineName string, nodes int) (Topology, error) {
	name = strings.ToLower(strings.TrimSpace(name))
	switch {
	case name == "" || name == "none":
		return nil, nil
	case name == "auto":
		return Auto(machineName, nodes)
	case name == "mesh":
		return NewMesh2D(factor2(nodes))
	case name == "torus":
		x, y, z := factor3(nodes)
		return NewTorus3D(x, y, z)
	case name == "switch":
		return NewMultistage(nodes, 8)
	case strings.HasPrefix(name, "mesh:"):
		var x, y int
		if _, err := fmt.Sscanf(name[len("mesh:"):], "%dx%d", &x, &y); err != nil {
			return nil, fmt.Errorf("topology: invalid mesh extents %q (want mesh:XxY)", name)
		}
		if x*y != nodes {
			return nil, fmt.Errorf("topology: mesh %dx%d has %d nodes, need %d", x, y, x*y, nodes)
		}
		return NewMesh2D(x, y)
	case strings.HasPrefix(name, "torus:"):
		var x, y, z int
		if _, err := fmt.Sscanf(name[len("torus:"):], "%dx%dx%d", &x, &y, &z); err != nil {
			return nil, fmt.Errorf("topology: invalid torus extents %q (want torus:XxYxZ)", name)
		}
		if x*y*z != nodes {
			return nil, fmt.Errorf("topology: torus %dx%dx%d has %d nodes, need %d", x, y, z, x*y*z, nodes)
		}
		return NewTorus3D(x, y, z)
	}
	return nil, fmt.Errorf("topology: unknown topology %q (none, auto, mesh[:XxY], torus[:XxYxZ], switch)", name)
}

// Auto picks the historically accurate topology for a machine model name:
// mesh for the Paragon, torus for the T3D, switch for the SP-2.
func Auto(machineName string, nodes int) (Topology, error) {
	n := strings.ToLower(machineName)
	switch {
	case strings.Contains(n, "paragon"):
		return NewMesh2D(factor2(nodes))
	case strings.Contains(n, "t3d"):
		x, y, z := factor3(nodes)
		return NewTorus3D(x, y, z)
	case strings.Contains(n, "sp-2"), strings.Contains(n, "sp2"):
		return NewMultistage(nodes, 8)
	}
	return nil, fmt.Errorf("topology: no default topology for machine %q (use mesh, torus or switch explicitly)", machineName)
}

// factor2 splits n into the most square X x Y factorization with X >= Y.
func factor2(n int) (x, y int) {
	y = 1
	for d := 2; d*d <= n; d++ {
		if n%d == 0 {
			y = d
		}
	}
	return n / y, y
}

// factor3 splits n into a near-cubic X x Y x Z factorization (X >= Y >= Z).
func factor3(n int) (x, y, z int) {
	z = 1
	for d := 2; d*d*d <= n; d++ {
		if n%d == 0 {
			z = d
		}
	}
	x, y = factor2(n / z)
	if y < z {
		y, z = z, y
	}
	if x < y {
		x, y = y, x
	}
	return x, y, z
}
