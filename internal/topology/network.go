package topology

import (
	"fmt"

	"agcm/internal/machine"
)

// Params calibrate the routed network model against a flat machine model.
// The flat model charges Latency + bytes/Bandwidth per message regardless of
// distance; the routed model splits the same quantities into a startup term,
// a per-hop router delay, link serialization, and injection-port pipelining.
type Params struct {
	// BaseSeconds is the distance-independent per-message startup
	// (message-passing software, packetization).
	BaseSeconds float64
	// HopSeconds is the routing delay per traversed link: switch
	// arbitration plus channel setup for the wormhole head flit.
	HopSeconds float64
	// LinkBytesPerSec is the bandwidth of one link.
	LinkBytesPerSec float64
	// InjectBytesPerSec is the node-to-network injection bandwidth: a
	// node's back-to-back sends serialize at this rate even when their
	// routes never share a link.
	InjectBytesPerSec float64
}

// DefaultParams derives routed-network parameters from a flat machine
// model: the flat latency becomes the startup term, one eighth of it the
// per-hop delay (so a route across a 240-node Paragon mesh roughly doubles
// the base latency, matching the era's hop-dominated long routes), and the
// flat bandwidth is used for both the links and the injection port.
func DefaultParams(m *machine.Model) Params {
	return Params{
		BaseSeconds:       m.Latency,
		HopSeconds:        m.Latency / 8,
		LinkBytesPerSec:   m.Bandwidth,
		InjectBytesPerSec: m.Bandwidth,
	}
}

// srcState is the per-source-rank mutable state of a Network.  Each srcState
// is touched exclusively by the goroutine simulating that rank, which is
// what keeps the concurrent route model deterministic and race-free.
type srcState struct {
	nicFreeAt float64 // virtual time the injection port finishes its last send
	path      []int   // reusable route scratch
	_         [4]int64
}

// Network is a deterministic route-aware interconnect model: it implements
// sim.RouteModel by expanding every message into its dimension-ordered link
// path under a placement, charging hop latency and injection-port
// pipelining, and recording per-link byte and busy-time counters.
//
// The in-flight time it returns is congestion-free between senders (each
// message sees empty links); cross-sender link contention is resolved
// afterwards, deterministically, by Contend over the run's message log.
// Modelling shared-link queueing online would require reading state written
// concurrently by other ranks' goroutines, making virtual time depend on
// the host scheduler — exactly what the simulator's bit-reproducibility
// guarantee forbids.
type Network struct {
	topo   Topology
	place  Placement
	par    Params
	ranks  int
	nlinks int
	src    []srcState
	// Per-link counters sharded by source rank: shard src owns the block
	// [src*nlinks, (src+1)*nlinks).  Totals are reduced in fixed source
	// order, so even the float sums are bit-deterministic.
	linkBytes []int64
	linkBusy  []float64
	linkMsgs  []int64
}

// NewNetwork builds a route model for a machine of ranks == topo.Nodes()
// processes placed by place, with parameters derived from m (see
// DefaultParams).  Use NewNetworkParams for explicit calibration.
func NewNetwork(topo Topology, place Placement, m *machine.Model) (*Network, error) {
	return NewNetworkParams(topo, place, DefaultParams(m))
}

// NewNetworkParams builds a route model with explicit parameters.
func NewNetworkParams(topo Topology, place Placement, par Params) (*Network, error) {
	if topo == nil {
		return nil, fmt.Errorf("topology: nil topology")
	}
	if place == nil {
		place = RowMajor()
	}
	if par.LinkBytesPerSec <= 0 || par.InjectBytesPerSec <= 0 {
		return nil, fmt.Errorf("topology: link and injection bandwidth must be positive")
	}
	if par.BaseSeconds < 0 || par.HopSeconds < 0 {
		return nil, fmt.Errorf("topology: latencies must be non-negative")
	}
	n := topo.Nodes()
	// The placement must be a bijection of [0, n): walk it once.
	if p, ok := place.(*permutation); ok && len(p.nodes) != n {
		return nil, fmt.Errorf("topology: placement %s covers %d nodes, machine has %d",
			p.name, len(p.nodes), n)
	}
	seen := make([]bool, n)
	for r := 0; r < n; r++ {
		nd := place.Node(r)
		if nd < 0 || nd >= n || seen[nd] {
			return nil, fmt.Errorf("topology: placement %s is not a bijection at rank %d (node %d)",
				place.Name(), r, nd)
		}
		seen[nd] = true
	}
	return &Network{
		topo:      topo,
		place:     place,
		par:       par,
		ranks:     n,
		nlinks:    topo.NumLinks(),
		src:       make([]srcState, n),
		linkBytes: make([]int64, n*topo.NumLinks()),
		linkBusy:  make([]float64, n*topo.NumLinks()),
		linkMsgs:  make([]int64, n*topo.NumLinks()),
	}, nil
}

// Topology returns the modelled interconnect.
func (n *Network) Topology() Topology { return n.topo }

// Placement returns the rank layout.
func (n *Network) Placement() Placement { return n.place }

// Parameters returns the calibration in use.
func (n *Network) Parameters() Params { return n.par }

// RouteSeconds implements sim.RouteModel: the in-flight time of a message
// injected by world rank src at virtual time now.  It is called concurrently
// from every rank's goroutine but touches only the src shard, so results are
// independent of goroutine interleaving.
func (n *Network) RouteSeconds(src, dst, bytes int, now float64) float64 {
	s := &n.src[src]
	s.path = n.topo.Route(n.place.Node(src), n.place.Node(dst), s.path[:0])
	ser := float64(bytes) / n.par.LinkBytesPerSec
	inj := float64(bytes) / n.par.InjectBytesPerSec

	// Injection pipelining: eager sends are free for the sender's CPU, but
	// the node's network port pushes them out one at a time.  A burst of
	// P-1 transpose messages therefore leaves the node back to back — the
	// serialization the paper's all-to-all analysis counts.
	start := now
	if s.nicFreeAt > start {
		start = s.nicFreeAt
	}
	s.nicFreeAt = start + inj
	queue := start - now

	wire := queue + n.par.BaseSeconds + float64(len(s.path))*n.par.HopSeconds + ser

	base := src * n.nlinks
	for _, l := range s.path {
		n.linkBytes[base+l] += int64(bytes)
		n.linkBusy[base+l] += ser
		n.linkMsgs[base+l]++
	}
	return wire
}

// FreeSeconds returns the congestion- and queue-free in-flight time between
// two ranks: the base latency, the route's hop delays and one link
// serialization.  It is the pure-function core of RouteSeconds, usable for
// analysis without touching any per-source state.
func (n *Network) FreeSeconds(src, dst, bytes int) float64 {
	return n.par.BaseSeconds + float64(n.Hops(src, dst))*n.par.HopSeconds +
		float64(bytes)/n.par.LinkBytesPerSec
}

// Hops returns the number of links on the route between two ranks' nodes.
func (n *Network) Hops(src, dst int) int {
	return len(n.topo.Route(n.place.Node(src), n.place.Node(dst), nil))
}

// MeanHops returns the average route length over all ordered rank pairs —
// the placement-sensitive distance summary reported by the experiments.
func (n *Network) MeanHops() float64 {
	if n.ranks < 2 {
		return 0
	}
	var total int
	var buf []int
	for a := 0; a < n.ranks; a++ {
		for b := 0; b < n.ranks; b++ {
			if a == b {
				continue
			}
			buf = n.topo.Route(n.place.Node(a), n.place.Node(b), buf[:0])
			total += len(buf)
		}
	}
	return float64(total) / float64(n.ranks*(n.ranks-1))
}

// LinkStat summarizes the traffic one directed link carried over a run.
type LinkStat struct {
	Link int    `json:"link"`
	Name string `json:"name"`
	// Msgs and Bytes count the messages routed across the link.
	Msgs  int64 `json:"msgs"`
	Bytes int64 `json:"bytes"`
	// BusySeconds is the cumulative serialization time of the link's
	// traffic: divided by the run's virtual duration it is the link's
	// utilization.
	BusySeconds float64 `json:"busySeconds"`
}

// LinkStats reduces the per-source shards into one LinkStat per link, in
// link-id order.  Call it only after sim.Machine.Run returns (the run's
// WaitGroup establishes the happens-before edge with the rank goroutines).
func (n *Network) LinkStats() []LinkStat {
	out := make([]LinkStat, n.nlinks)
	for l := range out {
		out[l] = LinkStat{Link: l, Name: n.topo.LinkName(l)}
	}
	// Reduce in fixed (source, link) order so float sums are reproducible.
	for src := 0; src < n.ranks; src++ {
		base := src * n.nlinks
		for l := 0; l < n.nlinks; l++ {
			out[l].Msgs += n.linkMsgs[base+l]
			out[l].Bytes += n.linkBytes[base+l]
			out[l].BusySeconds += n.linkBusy[base+l]
		}
	}
	return out
}

// ResetStats zeroes the per-link counters and injection clocks, so a caller
// can exclude warmup traffic from a report.
func (n *Network) ResetStats() {
	for i := range n.linkBytes {
		n.linkBytes[i] = 0
		n.linkBusy[i] = 0
		n.linkMsgs[i] = 0
	}
	for i := range n.src {
		n.src[i].nicFreeAt = 0
	}
}
