package topology

import "fmt"

// linkRegistry assigns dense ids to directed point-to-point links.  Ids are
// handed out in registration order, so topologies that enumerate their links
// deterministically at construction get deterministic ids; the map is only
// used for O(1) lookup on the routing hot path.
type linkRegistry struct {
	ids  map[uint64]int // packed (from, to) node pair -> link id
	ends [][2]int       // link id -> (from, to), the ordered source of truth
}

func newLinkRegistry() *linkRegistry {
	return &linkRegistry{ids: make(map[uint64]int)}
}

// packPair packs a directed node pair into one map key.  Node indices fit in
// 32 bits, so the packing is injective.
func packPair(from, to int) uint64 {
	return uint64(uint32(from))<<32 | uint64(uint32(to))
}

// add registers the directed link from->to and returns its id, or the
// existing id if the link was already registered.
func (r *linkRegistry) add(from, to int) int {
	k := packPair(from, to)
	if id, ok := r.ids[k]; ok {
		return id
	}
	id := len(r.ends)
	r.ids[k] = id
	r.ends = append(r.ends, [2]int{from, to})
	return id
}

// lookup returns the id of the directed link from->to, panicking if the
// topology never registered it — a routing bug, not a runtime condition.
func (r *linkRegistry) lookup(from, to int) int {
	id, ok := r.ids[packPair(from, to)]
	if !ok {
		panic(fmt.Sprintf("topology: no link %d->%d", from, to))
	}
	return id
}

// check verifies the map and slice views of the registry agree.  Called once
// at construction; a mismatch is a construction bug.
func (r *linkRegistry) check() {
	if len(r.ids) != len(r.ends) {
		panic(fmt.Sprintf("topology: link registry has %d keys for %d links", len(r.ids), len(r.ends)))
	}
	//lint:allow nondeterm each iteration only cross-checks its own ranged entry against the ends slice; no result depends on visit order
	for k, id := range r.ids {
		from, to := int(k>>32), int(uint32(k))
		if r.ends[id] != [2]int{from, to} {
			panic(fmt.Sprintf("topology: link registry entry %d->%d maps to id %d owned by %v",
				from, to, id, r.ends[id]))
		}
	}
}

// Mesh2D is a 2-D mesh without wraparound — the Intel Paragon XP/S
// interconnect.  Nodes are numbered row-major: node = y*NX + x with
// x in [0, NX) and y in [0, NY).  Each interior node has bidirectional
// channels to its four neighbours, modelled as two directed links.
type Mesh2D struct {
	NX, NY int
	reg    *linkRegistry
}

// NewMesh2D builds an NX x NY mesh.
func NewMesh2D(nx, ny int) (*Mesh2D, error) {
	if nx < 1 || ny < 1 {
		return nil, fmt.Errorf("topology: invalid mesh extents %dx%d", nx, ny)
	}
	m := &Mesh2D{NX: nx, NY: ny, reg: newLinkRegistry()}
	// Register links in a fixed order: +x and -x row by row, then +y/-y.
	for y := 0; y < ny; y++ {
		for x := 0; x+1 < nx; x++ {
			a, b := m.node(x, y), m.node(x+1, y)
			m.reg.add(a, b)
			m.reg.add(b, a)
		}
	}
	for y := 0; y+1 < ny; y++ {
		for x := 0; x < nx; x++ {
			a, b := m.node(x, y), m.node(x, y+1)
			m.reg.add(a, b)
			m.reg.add(b, a)
		}
	}
	m.reg.check()
	return m, nil
}

func (m *Mesh2D) node(x, y int) int { return y*m.NX + x }

// Name implements Topology.
func (m *Mesh2D) Name() string { return fmt.Sprintf("2-D mesh %dx%d", m.NX, m.NY) }

// Nodes implements Topology.
func (m *Mesh2D) Nodes() int { return m.NX * m.NY }

// NumLinks implements Topology.
func (m *Mesh2D) NumLinks() int { return len(m.reg.ends) }

// LinkName implements Topology.
func (m *Mesh2D) LinkName(id int) string {
	e := m.reg.ends[id]
	return fmt.Sprintf("(%d,%d)->(%d,%d)", e[0]%m.NX, e[0]/m.NX, e[1]%m.NX, e[1]/m.NX)
}

// Route implements Topology: dimension-ordered (X then Y) wormhole routing,
// the Paragon's deadlock-free discipline.
func (m *Mesh2D) Route(a, b int, buf []int) []int {
	ax, ay := a%m.NX, a/m.NX
	bx, by := b%m.NX, b/m.NX
	x, y := ax, ay
	for x != bx {
		nx := x + sign(bx-x)
		buf = append(buf, m.reg.lookup(m.node(x, y), m.node(nx, y)))
		x = nx
	}
	for y != by {
		ny := y + sign(by-y)
		buf = append(buf, m.reg.lookup(m.node(x, y), m.node(x, ny)))
		y = ny
	}
	return buf
}

func sign(d int) int {
	if d < 0 {
		return -1
	}
	return 1
}
