package sim

import (
	"errors"
	"math"
	"strings"
	"testing"
	"time"
)

// stubFault is a minimal FaultHook for tests: optional per-rank crash
// times, no slowdown, no message faults.
type stubFault struct {
	crashAt map[int]float64
}

func (s *stubFault) ComputeSeconds(rank int, start, dt float64) float64 { return dt }
func (s *stubFault) SendDelay(src, dst, tag int, seq int64, now float64) (float64, error) {
	return 0, nil
}
func (s *stubFault) CrashTime(rank int) float64 {
	if t, ok := s.crashAt[rank]; ok {
		return t
	}
	return math.Inf(1)
}

// TestDeadlockMismatchedTags is the acceptance scenario: a program whose
// ranks wait on tags nobody sends must abort within bounded wall time with
// an error naming at least one blocked (rank, src, tag) triple.
func TestDeadlockMismatchedTags(t *testing.T) {
	m := New(2, newTestModel())
	start := time.Now()
	_, err := m.Run(func(p *Proc) error {
		if p.Rank() == 0 {
			p.Send(1, 1, nil, 8) // tag 1, but rank 1 waits for tag 2
			p.Recv(1, 3)
		} else {
			p.Recv(0, 2)
		}
		return nil
	})
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadlock abort took %v, want < 5s", elapsed)
	}
	var de *DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("Run error = %v, want *DeadlockError", err)
	}
	if len(de.Blocked) != 2 {
		t.Fatalf("Blocked = %+v, want both ranks", de.Blocked)
	}
	want := BlockedRank{Rank: 1, Src: 0, Tag: 2}
	found := false
	for _, b := range de.Blocked {
		if b == want {
			found = true
		}
	}
	if !found {
		t.Fatalf("Blocked = %+v, missing %+v", de.Blocked, want)
	}
	if msg := err.Error(); !strings.Contains(msg, "rank 1 waiting on (src=0, tag=2)") {
		t.Fatalf("error %q does not name the blocked triple", msg)
	}
}

// TestDeadlockSingleRankSelfWait: one rank waiting on a message it never
// sent itself is the smallest possible deadlock.
func TestDeadlockSingleRankSelfWait(t *testing.T) {
	m := New(1, newTestModel())
	_, err := m.Run(func(p *Proc) error {
		p.Recv(0, 7)
		return nil
	})
	var de *DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("Run error = %v, want *DeadlockError", err)
	}
}

// TestNoFalseDeadlockUnderLoad: a correct many-message program must never
// trip the watchdog even though ranks block transiently all the time.
func TestNoFalseDeadlockUnderLoad(t *testing.T) {
	m := New(4, newTestModel())
	_, err := m.Run(func(p *Proc) error {
		next := (p.Rank() + 1) % p.Ranks()
		prev := (p.Rank() + p.Ranks() - 1) % p.Ranks()
		for i := 0; i < 200; i++ {
			p.Send(next, i, i, 8)
			if got := p.Recv(prev, i).(int); got != i {
				t.Errorf("rank %d: recv %d, want %d", p.Rank(), got, i)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

// TestErrorReturnUnblocksReceivers is the regression test for the
// mailbox-close bug: a rank returning a plain error (not panicking) must
// shut the machine down rather than leave its peers blocked forever.
func TestErrorReturnUnblocksReceivers(t *testing.T) {
	boom := errors.New("boom")
	m := New(3, newTestModel())
	done := make(chan struct{})
	var err error
	go func() {
		defer close(done)
		_, err = m.Run(func(p *Proc) error {
			if p.Rank() == 2 {
				return boom
			}
			p.Recv(2, 0) // never satisfied
			return nil
		})
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Run still blocked 5s after a rank returned an error")
	}
	if !errors.Is(err, boom) {
		t.Fatalf("Run error = %v, want %v", err, boom)
	}
}

// TestInjectedCrashReported: a fault-hook crash surfaces as *CrashError
// carrying the victim and the virtual crash time, and the victim's clock
// freezes exactly at the injected instant.
func TestInjectedCrashReported(t *testing.T) {
	m := New(2, newTestModel())
	m.SetFaultHook(&stubFault{crashAt: map[int]float64{1: 0.5}})
	res, err := m.Run(func(p *Proc) error {
		for i := 0; i < 100; i++ {
			p.Compute(1e5) // 0.1 virtual seconds per iteration
			p.Send(1-p.Rank(), i, nil, 8)
			p.Recv(1-p.Rank(), i)
		}
		return nil
	})
	var ce *CrashError
	if !errors.As(err, &ce) {
		t.Fatalf("Run error = %v, want *CrashError", err)
	}
	if ce.Rank != 1 || ce.At != 0.5 {
		t.Fatalf("crash = rank %d at %g, want rank 1 at 0.5", ce.Rank, ce.At)
	}
	if res == nil {
		t.Fatal("Run returned a nil Result alongside the crash")
	}
	if res.Clocks[1] != 0.5 {
		t.Fatalf("victim clock = %g, want frozen at 0.5", res.Clocks[1])
	}
}

// TestInjectedCrashDeterministic: the post-crash drain of the healthy
// ranks must be scheduling-independent — identical Clocks and WaitSeconds
// across repeated runs.
func TestInjectedCrashDeterministic(t *testing.T) {
	run := func() (*Result, error) {
		m := New(4, newTestModel())
		m.SetFaultHook(&stubFault{crashAt: map[int]float64{2: 0.0421}})
		return m.Run(func(p *Proc) error {
			next := (p.Rank() + 1) % p.Ranks()
			prev := (p.Rank() + p.Ranks() - 1) % p.Ranks()
			for i := 0; i < 50; i++ {
				p.Compute(1e3)
				p.Send(next, i, nil, 16)
				p.Recv(prev, i)
			}
			return nil
		})
	}
	ref, refErr := run()
	var ce *CrashError
	if !errors.As(refErr, &ce) {
		t.Fatalf("Run error = %v, want *CrashError", refErr)
	}
	for trial := 0; trial < 3; trial++ {
		res, err := run()
		if err == nil || err.Error() != refErr.Error() {
			t.Fatalf("trial %d: error %v, want %v", trial, err, refErr)
		}
		for r := range ref.Clocks {
			if res.Clocks[r] != ref.Clocks[r] {
				t.Fatalf("trial %d: rank %d clock %v, want %v",
					trial, r, res.Clocks[r], ref.Clocks[r])
			}
			if res.WaitSeconds[r] != ref.WaitSeconds[r] {
				t.Fatalf("trial %d: rank %d wait %v, want %v",
					trial, r, res.WaitSeconds[r], ref.WaitSeconds[r])
			}
		}
	}
}

// TestZeroFaultHookFree: installing no hook must leave behaviour identical
// to the seed — this pins the fast path used by every existing caller.
func TestZeroFaultHookFree(t *testing.T) {
	prog := func(p *Proc) error {
		p.Compute(1e4)
		p.Send(1-p.Rank(), 0, nil, 64)
		p.Recv(1-p.Rank(), 0)
		return nil
	}
	a, err := New(2, newTestModel()).Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	m := New(2, newTestModel())
	m.SetFaultHook(&stubFault{}) // hook installed but injects nothing
	b, err := m.Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	for r := range a.Clocks {
		if a.Clocks[r] != b.Clocks[r] {
			t.Fatalf("rank %d: clock %v with no-op hook, want %v", r, b.Clocks[r], a.Clocks[r])
		}
	}
}
