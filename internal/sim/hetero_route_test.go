package sim_test

// Determinism of heterogeneous machines composed with the route-aware
// network model: a degraded rank plus a topology-routed interconnect must
// produce bit-identical virtual clocks on every run, including under the
// race detector, because the paper's load-balancing experiments compare
// such runs directly.  Lives in an external test package so it can import
// topology (which itself imports sim) without a cycle.

import (
	"testing"

	"agcm/internal/machine"
	"agcm/internal/sim"
	"agcm/internal/topology"
)

// routedDegradedRun builds an 8-rank machine with rank 5 degraded 3x,
// installs a snake-placed 4x2 mesh network, and runs a mixed workload of
// neighbour exchange, all-to-all traffic and unequal compute.
func routedDegradedRun(t *testing.T) *sim.Result {
	t.Helper()
	base := machine.Paragon()
	models := make([]sim.CostModel, 8)
	for i := range models {
		models[i] = base
	}
	models[5] = machine.Degraded(base, 3)
	m := sim.NewHeterogeneous(models)

	topo, err := topology.NewMesh2D(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	place, err := topology.Snake(topo)
	if err != nil {
		t.Fatal(err)
	}
	net, err := topology.NewNetwork(topo, place, base)
	if err != nil {
		t.Fatal(err)
	}
	m.SetRouteModel(net)

	res, err := m.Run(func(p *sim.Proc) error {
		n := p.Ranks()
		for step := 0; step < 3; step++ {
			p.Timed("compute", func() { p.Compute(float64(1000 * (1 + p.Rank()))) })
			// Ring exchange.
			p.SendFloats((p.Rank()+1)%n, 1, []float64{float64(step)}, 64)
			p.RecvFloats((p.Rank()+n-1)%n, 1)
			// All-to-all, the transpose pattern.
			for d := 0; d < n; d++ {
				if d != p.Rank() {
					p.SendFloats(d, 2, []float64{1, 2, 3}, 24)
				}
			}
			for s := 0; s < n; s++ {
				if s != p.Rank() {
					p.RecvFloats(s, 2)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestHeterogeneousRoutedDeterminism(t *testing.T) {
	a := routedDegradedRun(t)
	for trial := 0; trial < 3; trial++ {
		b := routedDegradedRun(t)
		for r := range a.Clocks {
			if a.Clocks[r] != b.Clocks[r] {
				t.Fatalf("trial %d: rank %d clock %v != %v",
					trial, r, b.Clocks[r], a.Clocks[r])
			}
			if a.WaitSeconds[r] != b.WaitSeconds[r] {
				t.Fatalf("trial %d: rank %d wait %v != %v",
					trial, r, b.WaitSeconds[r], a.WaitSeconds[r])
			}
		}
	}
}

func TestDegradedComposesWithRoutes(t *testing.T) {
	res := routedDegradedRun(t)
	// The degraded rank's compute runs 3x slower than its homogeneous
	// neighbours'; with rank-proportional work, rank 5's accounted compute
	// must exceed every healthy rank's.
	compute := res.Accounts["compute"]
	for r, v := range compute {
		if r != 5 && compute[5] <= v {
			t.Fatalf("degraded rank 5 compute %v not above rank %d's %v", compute[5], r, v)
		}
	}
}

func TestFlatRouteMatchesNoRouteModel(t *testing.T) {
	run := func(install bool) *sim.Result {
		base := machine.CrayT3D()
		m := sim.New(4, base)
		if install {
			m.SetRouteModel(sim.FlatRoute{Model: base})
		}
		res, err := m.Run(func(p *sim.Proc) error {
			n := p.Ranks()
			p.Timed("work", func() { p.Compute(500) })
			p.SendFloats((p.Rank()+1)%n, 1, []float64{1}, 128)
			p.RecvFloats((p.Rank()+n-1)%n, 1)
			p.SendFloats((p.Rank()+2)%n, 2, []float64{1}, 4096)
			p.RecvFloats((p.Rank()+2)%n, 2)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	flat, routed := run(false), run(true)
	for r := range flat.Clocks {
		if flat.Clocks[r] != routed.Clocks[r] {
			t.Fatalf("FlatRoute changed rank %d clock: %v != %v",
				r, routed.Clocks[r], flat.Clocks[r])
		}
	}
}
