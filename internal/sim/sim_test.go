package sim

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"
	"testing"
)

// testModel is a simple cost model with unit-friendly constants.
type testModel struct {
	flop, mem, so, ro, lat, byteTime float64
}

func (m *testModel) FlopSeconds(n float64) float64         { return n * m.flop }
func (m *testModel) MemSeconds(n float64) float64          { return n * m.mem }
func (m *testModel) SendOverheadSeconds(bytes int) float64 { return m.so }
func (m *testModel) RecvOverheadSeconds(bytes int) float64 { return m.ro }
func (m *testModel) NetworkSeconds(bytes int) float64      { return m.lat + float64(bytes)*m.byteTime }

func newTestModel() *testModel {
	return &testModel{flop: 1e-6, mem: 1e-8, so: 1e-5, ro: 1e-5, lat: 1e-4, byteTime: 1e-7}
}

func TestMachineRanks(t *testing.T) {
	m := New(4, newTestModel())
	if got := m.Ranks(); got != 4 {
		t.Fatalf("Ranks() = %d, want 4", got)
	}
}

func TestNewPanicsOnBadArgs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("New(0, model) did not panic")
		}
	}()
	New(0, newTestModel())
}

func TestNewPanicsOnNilModel(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("New(1, nil) did not panic")
		}
	}()
	New(1, nil)
}

func TestComputeAdvancesClock(t *testing.T) {
	m := New(1, newTestModel())
	res, err := m.Run(func(p *Proc) error {
		p.Compute(1000)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := 1000 * 1e-6
	if got := res.Clocks[0]; math.Abs(got-want) > 1e-15 {
		t.Fatalf("clock = %g, want %g", got, want)
	}
}

func TestComputeMemAddsBothTerms(t *testing.T) {
	m := New(1, newTestModel())
	res, _ := m.Run(func(p *Proc) error {
		p.ComputeMem(100, 200)
		return nil
	})
	want := 100*1e-6 + 200*1e-8
	if got := res.Clocks[0]; math.Abs(got-want) > 1e-15 {
		t.Fatalf("clock = %g, want %g", got, want)
	}
}

func TestElapseNegativePanics(t *testing.T) {
	m := New(1, newTestModel())
	_, err := m.Run(func(p *Proc) error {
		p.Elapse(-1)
		return nil
	})
	if err == nil {
		t.Fatalf("Elapse(-1) did not produce an error")
	}
}

func TestSendRecvClockPropagation(t *testing.T) {
	model := newTestModel()
	m := New(2, model)
	const bytes = 800
	res, err := m.Run(func(p *Proc) error {
		if p.Rank() == 0 {
			p.Compute(5000) // 5 ms of work before sending
			p.Send(1, 7, []float64{1, 2, 3}, bytes)
		} else {
			got := p.RecvFloat64s(0, 7)
			if len(got) != 3 || got[2] != 3 {
				return fmt.Errorf("bad payload %v", got)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Sender: compute + send overhead.
	wantSender := 5000*model.flop + model.so
	if got := res.Clocks[0]; math.Abs(got-wantSender) > 1e-15 {
		t.Fatalf("sender clock = %g, want %g", got, wantSender)
	}
	// Receiver: idle until arrival, then recv overhead.
	wantRecv := wantSender + model.lat + bytes*model.byteTime + model.ro
	if got := res.Clocks[1]; math.Abs(got-wantRecv) > 1e-14 {
		t.Fatalf("receiver clock = %g, want %g", got, wantRecv)
	}
}

func TestRecvDoesNotRewindClock(t *testing.T) {
	model := newTestModel()
	m := New(2, model)
	res, err := m.Run(func(p *Proc) error {
		if p.Rank() == 0 {
			p.Send(1, 1, []float64{42}, 8)
		} else {
			p.Compute(1e6) // 1 virtual second: message arrives long before
			p.Recv(0, 1)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := 1e6*model.flop + model.ro
	if got := res.Clocks[1]; math.Abs(got-want) > 1e-12 {
		t.Fatalf("receiver clock = %g, want %g (recv must not rewind)", got, want)
	}
}

func TestMessagesMatchedBySourceAndTagFIFO(t *testing.T) {
	m := New(3, newTestModel())
	_, err := m.Run(func(p *Proc) error {
		switch p.Rank() {
		case 0:
			p.Send(2, 5, []float64{10}, 8)
			p.Send(2, 5, []float64{11}, 8)
			p.Send(2, 6, []float64{12}, 8)
		case 1:
			p.Send(2, 5, []float64{20}, 8)
		case 2:
			// Receive out of arrival order on purpose: tag 6 first.
			if v := p.RecvFloat64s(0, 6)[0]; v != 12 {
				return fmt.Errorf("tag 6 got %v, want 12", v)
			}
			if v := p.RecvFloat64s(1, 5)[0]; v != 20 {
				return fmt.Errorf("src 1 got %v, want 20", v)
			}
			if v := p.RecvFloat64s(0, 5)[0]; v != 10 {
				return fmt.Errorf("first src-0 tag-5 got %v, want 10 (FIFO)", v)
			}
			if v := p.RecvFloat64s(0, 5)[0]; v != 11 {
				return fmt.Errorf("second src-0 tag-5 got %v, want 11 (FIFO)", v)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSelfSend(t *testing.T) {
	m := New(1, newTestModel())
	_, err := m.Run(func(p *Proc) error {
		p.Send(0, 3, []float64{7}, 8)
		if v := p.RecvFloat64s(0, 3)[0]; v != 7 {
			return fmt.Errorf("self-send payload %v, want 7", v)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendInvalidRankPanicsIntoError(t *testing.T) {
	m := New(2, newTestModel())
	_, err := m.Run(func(p *Proc) error {
		if p.Rank() == 0 {
			p.Send(5, 0, nil, 0)
		} else {
			p.Recv(0, 0) // will be unblocked by shutdown
		}
		return nil
	})
	if err == nil {
		t.Fatalf("send to invalid rank did not produce an error")
	}
}

func TestRunCollectsBodyError(t *testing.T) {
	m := New(3, newTestModel())
	sentinel := errors.New("boom")
	_, err := m.Run(func(p *Proc) error {
		if p.Rank() == 1 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want %v", err, sentinel)
	}
}

func TestPanicInOneRankUnblocksOthers(t *testing.T) {
	m := New(2, newTestModel())
	_, err := m.Run(func(p *Proc) error {
		if p.Rank() == 0 {
			panic("deliberate")
		}
		p.Recv(0, 9) // never sent; must be released by shutdown
		return nil
	})
	if err == nil {
		t.Fatalf("expected error from panicking rank")
	}
}

func TestDeterministicClocksAcrossRuns(t *testing.T) {
	run := func() []float64 {
		m := New(8, newTestModel())
		res, err := m.Run(func(p *Proc) error {
			// Irregular per-rank work plus a ring shift.
			p.Compute(float64(1000 * (p.Rank()%3 + 1)))
			next := (p.Rank() + 1) % p.Ranks()
			prev := (p.Rank() + p.Ranks() - 1) % p.Ranks()
			p.Send(next, 0, []float64{float64(p.Rank())}, 8)
			p.Recv(prev, 0)
			p.Compute(500)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Clocks
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("rank %d clock differs across runs: %g vs %g", i, a[i], b[i])
		}
	}
}

func TestAccounting(t *testing.T) {
	m := New(2, newTestModel())
	res, err := m.Run(func(p *Proc) error {
		p.Timed("dynamics", func() { p.Compute(1000) })
		p.Timed("physics", func() { p.Compute(float64(2000 * (p.Rank() + 1))) })
		p.Account("extra", 0.5)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.Accounts["dynamics"][0], 1000*1e-6; math.Abs(got-want) > 1e-15 {
		t.Fatalf("dynamics[0] = %g, want %g", got, want)
	}
	if got, want := res.MaxAccount("physics"), 4000*1e-6; math.Abs(got-want) > 1e-15 {
		t.Fatalf("MaxAccount(physics) = %g, want %g", got, want)
	}
	if got, want := res.SumAccount("physics"), 6000*1e-6; math.Abs(got-want) > 1e-15 {
		t.Fatalf("SumAccount(physics) = %g, want %g", got, want)
	}
	if got, want := res.SumAccount("extra"), 1.0; got != want {
		t.Fatalf("SumAccount(extra) = %g, want %g", got, want)
	}
	cats := res.Categories()
	if len(cats) != 3 || cats[0] != "dynamics" || cats[1] != "extra" || cats[2] != "physics" {
		t.Fatalf("Categories() = %v, want sorted [dynamics extra physics]", cats)
	}
}

func TestMaxClock(t *testing.T) {
	r := &Result{Clocks: []float64{1.5, 3.25, 2.0}}
	if got := r.MaxClock(); got != 3.25 {
		t.Fatalf("MaxClock = %g, want 3.25", got)
	}
}

func TestAllRanksActuallyRun(t *testing.T) {
	var count atomic.Int64
	m := New(17, newTestModel())
	if _, err := m.Run(func(p *Proc) error {
		count.Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if count.Load() != 17 {
		t.Fatalf("ran %d ranks, want 17", count.Load())
	}
}

func TestMessageStatistics(t *testing.T) {
	m := New(3, newTestModel())
	res, err := m.Run(func(p *Proc) error {
		if p.Rank() == 0 {
			p.Send(1, 0, []float64{1, 2}, 16)
			p.Send(2, 0, []float64{1}, 8)
			if p.MessagesSent() != 2 || p.BytesSent() != 24 {
				return fmt.Errorf("rank 0 stats %d/%d", p.MessagesSent(), p.BytesSent())
			}
		} else {
			p.Recv(0, 0)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MessagesSent[0] != 2 || res.BytesSent[0] != 24 {
		t.Fatalf("result stats %v %v", res.MessagesSent, res.BytesSent)
	}
	if res.TotalMessages() != 2 || res.TotalBytes() != 24 {
		t.Fatalf("totals %d %d", res.TotalMessages(), res.TotalBytes())
	}
}

func TestAccountedGetter(t *testing.T) {
	m := New(1, newTestModel())
	_, err := m.Run(func(p *Proc) error {
		p.Timed("x", func() { p.Compute(100) })
		if got := p.Accounted("x"); math.Abs(got-100e-6) > 1e-15 {
			return fmt.Errorf("Accounted(x) = %g, want 1e-4", got)
		}
		if got := p.Accounted("missing"); got != 0 {
			return fmt.Errorf("Accounted(missing) = %g, want 0", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
