// Package sim implements a deterministic virtual-time simulator for a
// distributed-memory message-passing machine.
//
// The simulator plays the role of the Intel Paragon and Cray T3D systems used
// in the paper: every simulated processor (rank) runs as its own goroutine
// and owns a virtual clock measured in seconds.  Computation advances the
// local clock through a CostModel; messages carry the sender's clock and the
// receiver's clock is advanced to the message arrival time on receipt.  The
// result is a LogGP-flavoured performance simulation in which load imbalance,
// message latency and bandwidth effects emerge from the actual algorithm and
// the actual data being moved, not from closed-form formulas.
//
// Virtual time never depends on wall-clock time or on the Go scheduler:
// messages are matched by (source, tag) in FIFO order, so any program that is
// deterministic per rank produces bit-identical clocks on every run.
package sim

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// CostModel translates abstract work (floating point operations, memory
// traffic, message bytes) into virtual seconds.  Implementations live in
// package machine; sim only consumes the interface.
type CostModel interface {
	// FlopSeconds returns the virtual time to execute n floating point
	// operations out of registers/cache.
	FlopSeconds(n float64) float64
	// MemSeconds returns the virtual time attributable to moving n bytes
	// between memory and the processor (the cache-miss cost component).
	MemSeconds(n float64) float64
	// SendOverheadSeconds is the CPU occupancy on the sender per message.
	SendOverheadSeconds(bytes int) float64
	// RecvOverheadSeconds is the CPU occupancy on the receiver per message.
	RecvOverheadSeconds(bytes int) float64
	// NetworkSeconds is the in-flight time of a message: latency plus
	// serialization at the network bandwidth.
	NetworkSeconds(bytes int) float64
}

// FaultHook injects deterministic perturbations into a machine (see package
// fault for the standard seeded implementation).  All decisions must be pure
// functions of their arguments so faulty runs stay bit-reproducible; the
// zero-fault path pays only a nil check.
type FaultHook interface {
	// ComputeSeconds maps a compute interval starting at virtual time
	// `start` with nominal duration dt to its perturbed duration (e.g. a
	// slowdown whose onset the interval straddles).  Must return dt when
	// the rank is unaffected.
	ComputeSeconds(rank int, start, dt float64) float64
	// SendDelay returns extra in-flight delay for the message with the
	// sender-local sequence number seq (jitter, drop-and-retransmit
	// timeouts).  A non-nil error means delivery failed permanently
	// (retry budget exhausted) and aborts the sending rank.
	SendDelay(src, dst, tag int, seq int64, now float64) (float64, error)
	// CrashTime returns the virtual time at which the rank dies, or
	// +Inf for a healthy rank.  A crashed rank stops executing at that
	// instant; messages it already posted remain deliverable.
	CrashTime(rank int) float64
}

// message is an in-flight point-to-point message.  Float payloads travel in
// the typed floats field so the hot comm paths never box a slice into the
// payload interface (each such boxing is a heap allocation).
type message struct {
	source   int
	tag      int
	payload  any       // non-float payloads (ints, nil barrier tokens, ...)
	floats   []float64 // typed float payload, valid when isFloats is set
	isFloats bool      // payload travels in floats (which may be a nil slice)
	pooled   bool      // floats was drawn from the receiver's payload pool
	bytes    int
	arrive  float64 // virtual arrival time at the receiver
	seq     int64   // per-sender sequence number, for event logging
}

// key identifies a message queue: messages are matched by source and tag.
type key struct {
	source int
	tag    int
}

// qkey packs a (source, tag) pair into one word so the queue map takes the
// runtime's fast integer-key path instead of hashing a struct.  Ranks fit in
// 32 bits and tags are small ints, so the packing is injective.
func qkey(source, tag int) uint64 {
	return uint64(uint32(source))<<32 | uint64(uint32(tag))
}

// bufStack is one length class of the payload pool.  Pools are reached
// through a pointer so push/pop mutate in place without re-writing the map
// entry.
type bufStack struct {
	s [][]float64
}

// msgQueue is one FIFO of in-flight messages for a (source, tag) key.  It is
// drained with a head index and reset in place rather than deleted from the
// queues map, so a steady-state communication pattern re-uses both the map
// entries and the backing slices without allocating.
type msgQueue struct {
	msgs []*message
	head int
}

// mailbox is the receive side of one rank.  All ranks may post into it
// concurrently, so it is guarded by a mutex + cond.  The free list recycles
// message structs and the payload pool recycles copy-on-send buffers (keyed
// by exact length), making the steady-state transport allocation-free.
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queues map[uint64]*msgQueue
	free   []*message            // recycled message structs
	bufs   map[int]*bufStack     // recycled pooled payload buffers, by length
	closed bool
	rank   int
	wd     *watchdog

	// Single-entry lookup caches (guarded by mu).  Steady-state traffic
	// revisits the same queue and the same payload length run after run, so
	// most posts, takes and pool operations skip the map entirely.
	lastPostKey, lastTakeKey uint64
	lastPostQ, lastTakeQ     *msgQueue
	lastLen                  int
	lastBufs                 *bufStack
}

func newMailbox(rank int, wd *watchdog) *mailbox {
	mb := &mailbox{
		queues: make(map[uint64]*msgQueue),
		bufs:   make(map[int]*bufStack),
		rank:   rank,
		wd:     wd,
	}
	mb.cond = sync.NewCond(&mb.mu)
	return mb
}

// pool returns the length class for n-float payloads, creating it on first
// use.  Callers must hold mu.
func (mb *mailbox) pool(n int) *bufStack {
	if st := mb.lastBufs; st != nil && mb.lastLen == n {
		return st
	}
	st := mb.bufs[n]
	if st == nil {
		st = new(bufStack)
		mb.bufs[n] = st
	}
	mb.lastLen, mb.lastBufs = n, st
	return st
}

// post enqueues a message, drawing the struct from the free list and filling
// it in place (the fields are arguments rather than a message value so no
// intermediate struct is copied on the hot path).
func (mb *mailbox) post(source, tag int, payload any, floats []float64, isFloats, pooled bool, bytes int, arrive float64, seq int64) {
	mb.mu.Lock()
	var mp *message
	if n := len(mb.free); n > 0 {
		mp = mb.free[n-1]
		mb.free[n-1] = nil
		mb.free = mb.free[:n-1]
	} else {
		mp = new(message)
	}
	mp.source = source
	mp.tag = tag
	mp.payload = payload
	mp.floats = floats
	mp.isFloats = isFloats
	mp.pooled = pooled
	mp.bytes = bytes
	mp.arrive = arrive
	mp.seq = seq
	k := qkey(source, tag)
	q := mb.lastPostQ
	if q == nil || mb.lastPostKey != k {
		q = mb.queues[k]
		if q == nil {
			q = new(msgQueue)
			mb.queues[k] = q
		}
		mb.lastPostKey, mb.lastPostQ = k, q
	}
	q.msgs = append(q.msgs, mp)
	// Clear the receiver's blocked registration under the same lock that
	// created it, keeping the watchdog's wait-for graph exact.
	mb.wd.satisfied(mb.rank, key{source, tag})
	mb.mu.Unlock()
	mb.cond.Broadcast()
}

// postCopy is post for SendFloatsCopy: it draws a pooled buffer, copies data
// into it and enqueues, all under one lock acquisition.
func (mb *mailbox) postCopy(source, tag int, data []float64, bytes int, arrive float64, seq int64) {
	mb.mu.Lock()
	st := mb.pool(len(data))
	var buf []float64
	if k := len(st.s); k > 0 {
		buf = st.s[k-1]
		st.s[k-1] = nil
		st.s = st.s[:k-1]
	} else {
		buf = make([]float64, len(data))
	}
	copy(buf, data)
	var mp *message
	if n := len(mb.free); n > 0 {
		mp = mb.free[n-1]
		mb.free[n-1] = nil
		mb.free = mb.free[:n-1]
	} else {
		mp = new(message)
	}
	mp.source = source
	mp.tag = tag
	mp.floats = buf
	mp.isFloats = true
	mp.pooled = true
	mp.bytes = bytes
	mp.arrive = arrive
	mp.seq = seq
	k := qkey(source, tag)
	q := mb.lastPostQ
	if q == nil || mb.lastPostKey != k {
		q = mb.queues[k]
		if q == nil {
			q = new(msgQueue)
			mb.queues[k] = q
		}
		mb.lastPostKey, mb.lastPostQ = k, q
	}
	q.msgs = append(q.msgs, mp)
	mb.wd.satisfied(mb.rank, key{source, tag})
	mb.mu.Unlock()
	mb.cond.Broadcast()
}

func (mb *mailbox) take(source, tag int) (message, bool) {
	return mb.takeCopy(source, tag, nil, nil)
}

// takeCopy is take with an optional in-lock copy step: when into is non-nil,
// a float payload is copied into *into (grown from (*into)[:0]) and a pooled
// buffer is recycled immediately, so a RecvFloatsInto costs one lock
// acquisition instead of two.
func (mb *mailbox) takeCopy(source, tag int, into *[]float64, copied *bool) (message, bool) {
	k := qkey(source, tag)
	mb.mu.Lock()
	defer mb.mu.Unlock()
	q := mb.lastTakeQ
	if q == nil || mb.lastTakeKey != k {
		q = mb.queues[k]
		if q == nil {
			q = new(msgQueue)
			mb.queues[k] = q
		}
		mb.lastTakeKey, mb.lastTakeQ = k, q
	}
	for {
		if q.head < len(q.msgs) {
			mp := q.msgs[q.head]
			q.msgs[q.head] = nil
			q.head++
			if q.head == len(q.msgs) {
				q.msgs = q.msgs[:0]
				q.head = 0
			}
			if into != nil && mp.isFloats {
				*into = append((*into)[:0], mp.floats...)
				*copied = true
				if mp.pooled {
					st := mb.pool(len(mp.floats))
					st.s = append(st.s, mp.floats)
					mp.floats = nil
					mp.pooled = false
				}
			}
			m := *mp
			*mp = message{}
			mb.free = append(mb.free, mp)
			return m, true
		}
		if mb.closed {
			return message{}, false
		}
		mb.wd.block(mb.rank, key{source, tag})
		mb.cond.Wait()
		mb.wd.unblock(mb.rank)
	}
}

func (mb *mailbox) close() {
	mb.mu.Lock()
	mb.closed = true
	mb.mu.Unlock()
	mb.cond.Broadcast()
}

// Machine is a simulated distributed-memory computer with a fixed number of
// ranks, each with its own CostModel (normally all the same).
type Machine struct {
	n         int
	models    []CostModel
	boxes     []*mailbox
	logEvents bool
	fault     FaultHook
	routes    RouteModel
	wd        *watchdog
}

// New creates a machine with n identical ranks.  It panics if n < 1 or
// model is nil, since both indicate a programming error rather than a
// runtime condition.
func New(n int, model CostModel) *Machine {
	if model == nil {
		panic("sim: nil cost model")
	}
	models := make([]CostModel, n)
	for i := range models {
		models[i] = model
	}
	return NewHeterogeneous(models)
}

// NewHeterogeneous creates a machine whose ranks have individual cost
// models — e.g. one degraded node among healthy ones, the scenario an
// estimate-driven load balancer must absorb.  Message in-flight times use
// the sender's network model.
func NewHeterogeneous(models []CostModel) *Machine {
	if len(models) < 1 {
		panic("sim: machine must have at least 1 rank")
	}
	for i, mod := range models {
		if mod == nil {
			panic(fmt.Sprintf("sim: nil cost model for rank %d", i))
		}
	}
	m := &Machine{n: len(models), models: models}
	m.wd = newWatchdog(m)
	m.boxes = make([]*mailbox, m.n)
	for i := range m.boxes {
		m.boxes[i] = newMailbox(i, m.wd)
	}
	return m
}

// Ranks returns the number of ranks in the machine.
func (m *Machine) Ranks() int { return m.n }

// SetFaultHook installs a fault injector consulted on compute, send and
// receive paths of the next Run.  Pass nil to remove it.
func (m *Machine) SetFaultHook(h FaultHook) { m.fault = h }

// closeAll closes every mailbox, waking any parked rank.  Idempotent.
func (m *Machine) closeAll() {
	for _, b := range m.boxes {
		b.close()
	}
}

// Result captures the outcome of one Run: the final virtual clock of each
// rank, per-category accounted time, and communication statistics.
type Result struct {
	// Clocks holds each rank's virtual clock at program exit, in seconds.
	Clocks []float64
	// Accounts maps a timing category (e.g. "filter", "physics") to the
	// per-rank virtual seconds accounted to that category.
	Accounts map[string][]float64
	// MessagesSent and BytesSent hold each rank's point-to-point
	// traffic — the quantities the paper's algorithm analysis counts
	// (P*logP messages for the ring, O(N*P) volume, and so on).
	MessagesSent []int64
	BytesSent    []int64
	// WaitSeconds is the virtual time each rank spent blocked in Recv
	// waiting for messages that had not yet arrived: the sum of
	// communication latency and load-imbalance idling.
	WaitSeconds []float64
	// Events holds each rank's event log when EnableEventLog was set
	// before Run (nil otherwise).
	Events [][]Event
}

// TotalMessages returns the machine-wide message count.
func (r *Result) TotalMessages() int64 {
	var n int64
	for _, v := range r.MessagesSent {
		n += v
	}
	return n
}

// TotalBytes returns the machine-wide bytes sent.
func (r *Result) TotalBytes() int64 {
	var n int64
	for _, v := range r.BytesSent {
		n += v
	}
	return n
}

// MaxClock returns the latest rank clock — the parallel execution time.
func (r *Result) MaxClock() float64 {
	max := 0.0
	for _, c := range r.Clocks {
		if c > max {
			max = c
		}
	}
	return max
}

// MaxAccount returns the maximum per-rank time accounted to category, which
// is the category's contribution to the critical path under a bulk-
// synchronous execution.
func (r *Result) MaxAccount(category string) float64 {
	max := 0.0
	for _, c := range r.Accounts[category] {
		if c > max {
			max = c
		}
	}
	return max
}

// SumAccount returns the total time across ranks accounted to category.
func (r *Result) SumAccount(category string) float64 {
	sum := 0.0
	for _, c := range r.Accounts[category] {
		sum += c
	}
	return sum
}

// Categories returns the sorted list of accounted categories.
func (r *Result) Categories() []string {
	cats := make([]string, 0, len(r.Accounts))
	for c := range r.Accounts {
		cats = append(cats, c)
	}
	sort.Strings(cats)
	return cats
}

// Run executes body once per rank, each in its own goroutine, and blocks
// until every rank returns.  The returned Result holds the final clocks.
//
// Run cannot hang: if any rank returns an error or panics, every mailbox is
// closed so peers blocked in Recv abort instead of waiting forever, and if
// all live ranks ever block simultaneously on messages that can never
// arrive, the built-in watchdog aborts the run with a DeadlockError naming
// each blocked (rank, src, tag).  Errors are reported by decreasing
// usefulness: injected crashes (CrashError), then deadlocks, then
// cancellation (CanceledError, RunContext only), then the first rank's own
// error or panic, then shutdown-victim errors.
func (m *Machine) Run(body func(p *Proc) error) (*Result, error) {
	//lint:allow ctxflow Run is the deliberately deadline-free entry point; callers needing cancellation use RunContext
	return m.RunContext(context.Background(), body)
}

// RunContext is Run with cooperative cancellation: when ctx is cancelled or
// its deadline passes, every mailbox is closed so ranks parked in Recv abort
// at their next communication point (computation between communications is
// never interrupted), and RunContext returns a *CanceledError wrapping
// ctx.Err().  Cancellation composes with the hang watchdog rather than
// racing it: a machine the watchdog has already proven deadlocked reports
// the DeadlockError even if ctx expires during the shutdown drain, because
// the deadlock — not the deadline — is the root cause.
func (m *Machine) RunContext(ctx context.Context, body func(p *Proc) error) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, &CanceledError{Cause: err}
	}
	procs := make([]*Proc, m.n)
	errs := make([]error, m.n)
	m.wd.reset()
	var canceled atomic.Bool
	if ctx.Done() != nil {
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			select {
			case <-ctx.Done():
				// Order matters: the flag must be visible before the
				// shutdown drain lets wg.Wait return below.
				canceled.Store(true)
				m.wd.shutdown()
			case <-stop:
			}
		}()
	}
	var wg sync.WaitGroup
	for r := 0; r < m.n; r++ {
		procs[r] = &Proc{
			rank:     r,
			machine:  m,
			accounts: make(map[string]float64),
			crashAt:  math.Inf(1),
		}
		if m.fault != nil {
			procs[r].crashAt = m.fault.CrashTime(r)
		}
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			defer func() {
				if rec := recover(); rec != nil {
					switch e := rec.(type) {
					case *CrashError:
						// An injected crash removes this rank but lets the
						// rest of the machine keep draining deterministically;
						// the watchdog handles any resulting quiescence.
						errs[r] = e
						m.wd.crash(r)
					case *abortedError:
						errs[r] = e
						m.wd.finish(r)
					default:
						errs[r] = fmt.Errorf("sim: rank %d panicked: %v", r, rec)
						// Unblock any rank waiting on a message that
						// will now never come.
						m.wd.shutdown()
					}
					return
				}
				if errs[r] != nil {
					// A rank that *returns* an error must release its
					// peers exactly like one that panics, or they hang
					// in Recv forever.
					m.wd.shutdown()
					return
				}
				m.wd.finish(r)
			}()
			errs[r] = body(procs[r])
		}(r)
	}
	wg.Wait()
	res := &Result{
		Clocks:       make([]float64, m.n),
		Accounts:     make(map[string][]float64),
		MessagesSent: make([]int64, m.n),
		BytesSent:    make([]int64, m.n),
		WaitSeconds:  make([]float64, m.n),
	}
	if m.logEvents {
		res.Events = make([][]Event, m.n)
	}
	for r, p := range procs {
		res.Clocks[r] = p.clock
		res.MessagesSent[r] = p.messagesSent
		res.BytesSent[r] = p.bytesSent
		res.WaitSeconds[r] = p.waitSeconds
		if m.logEvents {
			res.Events[r] = p.events
		}
		//lint:allow nondeterm each iteration writes Accounts[cat][r] for its own ranged key only; order is unobservable
		for cat, t := range p.accounts {
			if _, ok := res.Accounts[cat]; !ok {
				res.Accounts[cat] = make([]float64, m.n)
			}
			res.Accounts[cat][r] = t
		}
	}
	// Injected crashes are the root cause of everything downstream of them.
	for _, err := range errs {
		if _, ok := err.(*CrashError); ok {
			return res, err
		}
	}
	if err := m.wd.deadlock(); err != nil {
		return res, err
	}
	if canceled.Load() {
		// The aborted ranks below are victims of the cancellation drain,
		// not independent failures.
		return res, &CanceledError{Cause: ctx.Err()}
	}
	// Prefer a rank's own failure over the victims it shut down.
	var victim error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if _, ok := err.(*abortedError); ok {
			if victim == nil {
				victim = err
			}
			continue
		}
		return res, err
	}
	if victim != nil {
		return res, victim
	}
	return res, nil
}

// Proc is one simulated processor.  All methods must be called only from the
// goroutine running that rank's body.
type Proc struct {
	rank         int
	machine      *Machine
	clock        float64
	crashAt      float64 // injected crash time (+Inf when healthy)
	accounts     map[string]float64
	messagesSent int64
	bytesSent    int64
	waitSeconds  float64
	events       []Event
}

// WaitSeconds returns the virtual time this rank has spent blocked on
// not-yet-arrived messages.
func (p *Proc) WaitSeconds() float64 { return p.waitSeconds }

// MessagesSent returns the number of point-to-point messages this rank has
// sent so far (self-sends included).
func (p *Proc) MessagesSent() int64 { return p.messagesSent }

// BytesSent returns the total payload bytes this rank has sent so far.
func (p *Proc) BytesSent() int64 { return p.bytesSent }

// Rank returns this processor's rank in [0, Ranks).
func (p *Proc) Rank() int { return p.rank }

// Ranks returns the machine size.
func (p *Proc) Ranks() int { return p.machine.n }

// Model returns this rank's cost model.
func (p *Proc) Model() CostModel { return p.machine.models[p.rank] }

// Clock returns the current virtual time of this rank in seconds.
func (p *Proc) Clock() float64 { return p.clock }

// Compute advances the clock by the cost of flops floating point operations.
func (p *Proc) Compute(flops float64) {
	dt := p.machine.models[p.rank].FlopSeconds(flops)
	if p.machine.fault != nil {
		p.faultyAdvance(dt)
		return
	}
	p.clock += dt
}

// ComputeMem advances the clock by the cost of flops operations plus
// memBytes of memory traffic.  Use this for kernels whose cost is dominated
// by cache behaviour rather than arithmetic.
func (p *Proc) ComputeMem(flops, memBytes float64) {
	dt := p.machine.models[p.rank].FlopSeconds(flops) + p.machine.models[p.rank].MemSeconds(memBytes)
	if p.machine.fault != nil {
		p.faultyAdvance(dt)
		return
	}
	p.clock += dt
}

// Elapse advances the clock by a raw number of virtual seconds.
func (p *Proc) Elapse(seconds float64) {
	if seconds < 0 {
		panic(fmt.Sprintf("sim: rank %d elapsed negative time %g", p.rank, seconds))
	}
	if p.machine.fault != nil {
		p.faultyAdvance(seconds)
		return
	}
	p.clock += seconds
}

// faultyAdvance advances the clock by dt seconds of CPU occupancy under an
// installed fault hook: the hook may stretch the interval (slowdown onset)
// and the rank dies the instant its clock reaches the injected crash time.
func (p *Proc) faultyAdvance(dt float64) {
	p.clock += p.machine.fault.ComputeSeconds(p.rank, p.clock, dt)
	if p.clock >= p.crashAt {
		p.crash()
	}
}

// crash stops the rank at its injected crash time.  The panic is recovered
// by Run and surfaced as a *CrashError.
func (p *Proc) crash() {
	p.clock = p.crashAt
	panic(&CrashError{Rank: p.rank, At: p.crashAt})
}

// Send transmits payload to rank dst with the given tag.  bytes is the wire
// size used for timing.  Send is eager and asynchronous: it costs the sender
// only the send overhead.  Payloads are passed by reference; senders must
// not mutate a payload after sending it.
func (p *Proc) Send(dst, tag int, payload any, bytes int) {
	p.send(dst, tag, payload, nil, false, false, bytes)
}

// SendFloats transmits a float slice by reference, like Send but without
// boxing the slice into an interface (which would allocate per message).
// Senders must not mutate the slice after sending it.
func (p *Proc) SendFloats(dst, tag int, data []float64, bytes int) {
	p.send(dst, tag, nil, data, true, false, bytes)
}

// SendFloatsCopy transmits a copy of data drawn from the destination's
// payload pool: the caller may reuse data immediately, and the receiver
// recycles the copy on RecvFloatsInto.  At steady state this is both safe
// against aliasing and allocation-free.  Timing is identical to SendFloats.
func (p *Proc) SendFloatsCopy(dst, tag int, data []float64, bytes int) {
	if dst < 0 || dst >= p.machine.n {
		panic(fmt.Sprintf("sim: rank %d send to invalid rank %d", p.rank, dst))
	}
	arrive, seq := p.sendClock(dst, tag, bytes)
	p.machine.boxes[dst].postCopy(p.rank, tag, data, bytes, arrive, seq)
}

// send is the common transmit path behind Send/SendFloats.  isFloats selects
// which of payload/floats carries the data.
func (p *Proc) send(dst, tag int, payload any, floats []float64, isFloats, pooled bool, bytes int) {
	if dst < 0 || dst >= p.machine.n {
		panic(fmt.Sprintf("sim: rank %d send to invalid rank %d", p.rank, dst))
	}
	arrive, seq := p.sendClock(dst, tag, bytes)
	p.machine.boxes[dst].post(p.rank, tag, payload, floats, isFloats, pooled, bytes, arrive, seq)
}

// sendClock charges the sender-side cost of one message — counters, send
// overhead, fault perturbation and event logging — and returns the message's
// arrival time and sequence number.
func (p *Proc) sendClock(dst, tag, bytes int) (arrive float64, seq int64) {
	p.messagesSent++
	p.bytesSent += int64(bytes)
	seq = p.messagesSent
	fault := p.machine.fault
	overhead := p.machine.models[p.rank].SendOverheadSeconds(bytes)
	if fault != nil {
		p.faultyAdvance(overhead)
	} else {
		p.clock += overhead
	}
	wire := 0.0
	if dst != p.rank {
		// Self-sends are legal and cost only the overheads, not the wire.
		// The route model (when installed) sees the post-overhead clock:
		// the instant the message actually reaches the network.
		if rm := p.machine.routes; rm != nil {
			wire = rm.RouteSeconds(p.rank, dst, bytes, p.clock)
		} else {
			wire = p.machine.models[p.rank].NetworkSeconds(bytes)
		}
		if fault != nil {
			extra, err := fault.SendDelay(p.rank, dst, tag, seq, p.clock)
			if err != nil {
				panic(fmt.Errorf("sim: rank %d send to rank %d (tag %d): %w", p.rank, dst, tag, err))
			}
			wire += extra
		}
	}
	p.logSend(dst, bytes, p.clock, seq)
	return p.clock + wire, seq
}

// recvMsg blocks until a message from rank src with the given tag arrives,
// advances the clock to at least its arrival time plus the receive overhead,
// and returns it.
func (p *Proc) recvMsg(src, tag int) message {
	if src < 0 || src >= p.machine.n {
		panic(fmt.Sprintf("sim: rank %d recv from invalid rank %d", p.rank, src))
	}
	m, ok := p.machine.boxes[p.rank].take(src, tag)
	if !ok {
		panic(&abortedError{rank: p.rank})
	}
	p.arriveMsg(&m)
	return m
}

// arriveMsg charges the receiver-side cost of a just-taken message: the wait
// until its arrival time, the receive overhead, any fault perturbation, and
// the event log entry.
func (p *Proc) arriveMsg(m *message) {
	waitedFrom := p.clock
	if m.arrive > p.clock {
		if m.arrive >= p.crashAt {
			// The rank dies while still waiting for this message.
			if p.crashAt > p.clock {
				p.waitSeconds += p.crashAt - p.clock
			}
			p.crash()
		}
		p.waitSeconds += m.arrive - p.clock
		p.clock = m.arrive
	}
	overhead := p.machine.models[p.rank].RecvOverheadSeconds(m.bytes)
	if p.machine.fault != nil {
		p.faultyAdvance(overhead)
	} else {
		p.clock += overhead
	}
	p.logRecv(m.source, m.bytes, waitedFrom, p.clock, m.seq)
}

// Recv blocks until a message from rank src with the given tag arrives, then
// returns its payload.  The local clock advances to at least the message's
// arrival time plus the receive overhead.
func (p *Proc) Recv(src, tag int) any {
	m := p.recvMsg(src, tag)
	if m.isFloats {
		// A typed payload received through the untyped path transfers
		// ownership to the caller; it is never recycled.
		return m.floats
	}
	return m.payload
}

// RecvFloats receives a float payload by reference: ownership of the slice
// transfers to the caller.
func (p *Proc) RecvFloats(src, tag int) []float64 {
	m := p.recvMsg(src, tag)
	if m.isFloats {
		return m.floats
	}
	return m.payload.([]float64)
}

// RecvFloatsInto receives a float payload by copying it into buf (grown as
// needed from buf[:0]) and returns the filled slice.  Pooled payloads —
// those sent with SendFloatsCopy — are recycled into this rank's payload
// pool, so a steady-state SendFloatsCopy/RecvFloatsInto exchange allocates
// nothing.  Timing is identical to RecvFloats.
func (p *Proc) RecvFloatsInto(src, tag int, buf []float64) []float64 {
	if src < 0 || src >= p.machine.n {
		panic(fmt.Sprintf("sim: rank %d recv from invalid rank %d", p.rank, src))
	}
	var copied bool
	m, ok := p.machine.boxes[p.rank].takeCopy(src, tag, &buf, &copied)
	if !ok {
		panic(&abortedError{rank: p.rank})
	}
	p.arriveMsg(&m)
	if copied {
		return buf
	}
	// Untyped payloads fall back to the copy-after-take path.
	if m.payload == nil {
		return buf[:0]
	}
	return append(buf[:0], m.payload.([]float64)...)
}

// RecvFloat64s receives and type-asserts a []float64 payload.
func (p *Proc) RecvFloat64s(src, tag int) []float64 {
	return p.RecvFloats(src, tag)
}

// Account attributes seconds of already-elapsed virtual time to a named
// category for later reporting.  Accounting is bookkeeping only; it does not
// advance the clock.
func (p *Proc) Account(category string, seconds float64) {
	p.accounts[category] += seconds
}

// Timed runs fn and accounts the virtual time it consumed to category.
func (p *Proc) Timed(category string, fn func()) {
	start := p.clock
	fn()
	p.accounts[category] += p.clock - start
	p.logSpan(category, start, p.clock)
}

// Accounted returns the virtual seconds accounted so far to category.
func (p *Proc) Accounted(category string) float64 {
	return p.accounts[category]
}
