package sim

// Route-aware network costs: an optional extension of the flat CostModel
// that lets the in-flight time of a message depend on *where* the endpoints
// live — which interconnect links the route crosses, how many hops it takes,
// and what the sender's injection port is already busy with.  Package
// topology provides the real implementation (mesh/torus/switch link models);
// FlatRoute adapts any CostModel so existing machines satisfy the new
// interface unchanged.
//
// Determinism contract: RouteSeconds is called concurrently from every
// rank's goroutine, so an implementation may keep mutable state only if that
// state is sharded by src (each shard touched exclusively by the goroutine
// running rank src).  Any cross-rank state would make the result depend on
// the Go scheduler and break the simulator's bit-reproducibility guarantee.

// RouteModel prices a message's in-flight time with knowledge of its
// endpoints and send time.  src and dst are world ranks (never equal:
// self-sends bypass the wire), bytes is the payload size used for timing,
// and now is the sender's virtual clock at injection (after the send
// overhead).  The returned value replaces CostModel.NetworkSeconds in the
// arrival-time computation; sender-side overhead accounting is unchanged.
type RouteModel interface {
	RouteSeconds(src, dst, bytes int, now float64) float64
}

// FlatRoute adapts a position-independent CostModel to the RouteModel
// interface: every pair of distinct ranks is one wire of the model's latency
// and bandwidth, exactly like a machine without topology modelling.  A
// Machine with FlatRoute{m} installed produces bit-identical clocks to one
// with no route model at all.
type FlatRoute struct {
	Model CostModel
}

// RouteSeconds implements RouteModel.
func (f FlatRoute) RouteSeconds(src, dst, bytes int, now float64) float64 {
	return f.Model.NetworkSeconds(bytes)
}

// SetRouteModel installs a route-aware network model consulted for every
// off-rank message of the next Run in place of the per-rank
// CostModel.NetworkSeconds.  Pass nil to restore flat costs.  Overheads,
// fault injection and event logging are unaffected.
func (m *Machine) SetRouteModel(rm RouteModel) { m.routes = rm }
