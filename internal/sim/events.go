package sim

// Event logging: an optional per-rank record of timed spans and messages,
// cheap enough to leave on for analysis runs and exportable to the Chrome
// trace-event format by the trace package.

// EventKind distinguishes the logged record types.
type EventKind int

const (
	// EventSpan is a named interval from Proc.Timed.
	EventSpan EventKind = iota
	// EventSend marks a message leaving a rank (Start = send time).
	EventSend
	// EventRecv marks a message being consumed (Start = receive
	// completion time, End - Start = the wait it caused, if any).
	EventRecv
)

// Event is one logged record on one rank's timeline.
type Event struct {
	Kind EventKind
	// Name is the span category, or "send"/"recv" for messages.
	Name string
	// Start and End are virtual times in seconds (End == Start for
	// instantaneous events).
	Start, End float64
	// Peer is the destination (sends) or source (receives) rank.
	Peer int
	// Bytes is the message payload size.
	Bytes int
	// Seq links a send event to its receive event: the sender's
	// (rank, Seq) pair is globally unique.
	Seq int64
}

// EnableEventLog turns on event recording for the next Run.  The log costs
// one slice append per span and per message.
func (m *Machine) EnableEventLog() { m.logEvents = true }

func (p *Proc) logSpan(name string, start, end float64) {
	if !p.machine.logEvents {
		return
	}
	p.events = append(p.events, Event{
		Kind: EventSpan, Name: name, Start: start, End: end,
	})
}

func (p *Proc) logSend(dst, bytes int, at float64, seq int64) {
	if !p.machine.logEvents {
		return
	}
	p.events = append(p.events, Event{
		Kind: EventSend, Name: "send", Start: at, End: at,
		Peer: dst, Bytes: bytes, Seq: seq,
	})
}

func (p *Proc) logRecv(src, bytes int, waitedFrom, at float64, seq int64) {
	if !p.machine.logEvents {
		return
	}
	p.events = append(p.events, Event{
		Kind: EventRecv, Name: "recv", Start: waitedFrom, End: at,
		Peer: src, Bytes: bytes, Seq: seq,
	})
}
