package sim

import (
	"context"
	"errors"
	"testing"
	"time"
)

// pingPongForever is a two-rank program that makes progress indefinitely:
// it never finishes and never deadlocks, so only cancellation can end it.
func pingPongForever(p *Proc) error {
	peer := 1 - p.Rank()
	for {
		if p.Rank() == 0 {
			p.Send(peer, 1, nil, 8)
			p.Recv(peer, 2)
		} else {
			p.Recv(peer, 1)
			p.Send(peer, 2, nil, 8)
		}
		p.Compute(100)
	}
}

func TestRunContextCancelStopsLiveRun(t *testing.T) {
	m := New(2, newTestModel())
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	res, err := m.RunContext(ctx, pingPongForever)
	var ce *CanceledError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *CanceledError", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("errors.Is(err, context.Canceled) = false for %v", err)
	}
	if res == nil {
		t.Fatal("canceled run must still return the partial Result")
	}
}

func TestRunContextDeadline(t *testing.T) {
	m := New(2, newTestModel())
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err := m.RunContext(ctx, pingPongForever)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded via CanceledError", err)
	}
}

func TestRunContextExpiredBeforeStart(t *testing.T) {
	m := New(2, newTestModel())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	_, err := m.RunContext(ctx, func(p *Proc) error {
		ran = true
		return nil
	})
	var ce *CanceledError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *CanceledError", err)
	}
	if ran {
		t.Error("body must not run under an already-expired context")
	}
}

// TestWatchdogWinsOverCancel proves cancellation composes with the hang
// watchdog instead of racing it: a machine that is provably deadlocked
// reports the DeadlockError — with its wait-for graph — even though the
// run also carries a (generous) deadline.
func TestWatchdogWinsOverCancel(t *testing.T) {
	m := New(2, newTestModel())
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	_, err := m.RunContext(ctx, func(p *Proc) error {
		// Both ranks wait on tags nobody sends: an immediate deadlock.
		p.Recv(1-p.Rank(), 99)
		return nil
	})
	var de *DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("err = %v, want *DeadlockError", err)
	}
	var ce *CanceledError
	if errors.As(err, &ce) {
		t.Fatalf("deadlock misreported as cancellation: %v", err)
	}
}

// TestRunContextBackground checks that RunContext with a plain Background
// context behaves exactly like Run.
func TestRunContextBackground(t *testing.T) {
	m := New(3, newTestModel())
	res, err := m.RunContext(context.Background(), func(p *Proc) error {
		p.Compute(1000)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, c := range res.Clocks {
		if c <= 0 {
			t.Errorf("rank %d clock = %g, want > 0", r, c)
		}
	}
}
