package sim

// Hang watchdog: the simulator's answer to the classic MPI failure mode in
// which one rank's mistake (a mismatched tag, an early exit, a crashed node)
// leaves every other rank blocked in Recv forever and the whole process —
// including `go test` — hangs with no diagnosis.
//
// Every rank that parks inside mailbox.take registers the (src, tag) pair it
// is waiting for.  A post that satisfies the registered pair clears the
// registration under the same mailbox lock, so the watchdog's view is exact:
// a registered rank has no satisfying message pending.  The moment every
// live rank is either finished, dead (injected crash) or registered blocked,
// no message can ever be posted again, the machine is provably deadlocked,
// and the watchdog aborts the run immediately — bounded wall time, no timers
// — returning a wait-for graph instead of hanging.
//
// Detection is purely event-driven, so it adds no cost to runs that never
// block and one mutex acquisition to each blocking wait.

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// DeadlockError reports a machine-wide hang: every live rank blocked in Recv
// on a message that can never arrive.  Blocked lists the wait-for edges.
type DeadlockError struct {
	// Blocked holds one entry per parked rank, sorted by rank.
	Blocked []BlockedRank
	// Dead lists ranks removed by an injected crash before the hang.
	Dead []int
}

// BlockedRank is one node of the wait-for graph: Rank is parked in Recv
// waiting for a message from Src with the given (machine-level) Tag.
type BlockedRank struct {
	Rank, Src, Tag int
}

func (e *DeadlockError) Error() string {
	s := "sim: deadlock detected: all live ranks blocked in Recv:"
	for i, b := range e.Blocked {
		if i > 0 {
			s += ";"
		}
		s += fmt.Sprintf(" rank %d waiting on (src=%d, tag=%d)", b.Rank, b.Src, b.Tag)
	}
	if len(e.Dead) > 0 {
		s += fmt.Sprintf(" [crashed ranks: %v]", e.Dead)
	}
	return s
}

// CrashError reports an injected rank crash (see FaultHook.CrashTime): the
// rank stopped executing at virtual time At and sent nothing afterwards.
type CrashError struct {
	Rank int
	At   float64
}

func (e *CrashError) Error() string {
	return fmt.Sprintf("sim: rank %d crashed at virtual time %.6gs (injected fault)", e.Rank, e.At)
}

// CanceledError reports that a RunContext was cut short by its context:
// the deadline passed or the caller cancelled while ranks were still
// running.  Cause is the context's error, so errors.Is(err,
// context.DeadlineExceeded) and errors.Is(err, context.Canceled)
// distinguish the two.  The run's Result reflects whatever the ranks had
// completed when the drain reached them and must not be treated as a
// finished simulation.
type CanceledError struct {
	Cause error
}

func (e *CanceledError) Error() string {
	return fmt.Sprintf("sim: run canceled: %v", e.Cause)
}

// Unwrap exposes the context error for errors.Is/As.
func (e *CanceledError) Unwrap() error { return e.Cause }

// abortedError marks a rank whose Recv was released by a machine abort
// (deadlock, peer panic or peer error); it is a victim, not a cause, and
// Run prefers any other error over it.
type abortedError struct {
	rank int
}

func (e *abortedError) Error() string {
	return fmt.Sprintf("sim: rank %d recv aborted (machine shut down)", e.rank)
}

// watchdog tracks which ranks are parked in mailbox.take and fires when no
// rank can ever make progress again.
type watchdog struct {
	machine *Machine

	// nblocked mirrors len(blocked) so the post fast path can skip the
	// lock when nothing is parked (the common case).
	nblocked atomic.Int32

	mu      sync.Mutex
	blocked map[int]key // rank -> awaited (source, tag), no satisfying message pending
	done    int         // ranks whose body returned nil
	dead    []int       // ranks removed by an injected crash
	aborted bool        // an abort (deadlock or shutdown) is in progress
	err     *DeadlockError
}

func newWatchdog(m *Machine) *watchdog {
	return &watchdog{machine: m, blocked: make(map[int]key)}
}

// reset clears per-Run state.
func (w *watchdog) reset() {
	w.mu.Lock()
	w.blocked = make(map[int]key)
	w.done = 0
	w.dead = nil
	w.aborted = false
	w.err = nil
	w.nblocked.Store(0)
	w.mu.Unlock()
}

// block registers rank as parked waiting for k.  Called with the rank's own
// mailbox lock held, immediately before cond.Wait.
func (w *watchdog) block(rank int, k key) {
	w.mu.Lock()
	w.blocked[rank] = k
	w.nblocked.Store(int32(len(w.blocked)))
	w.checkLocked()
	w.mu.Unlock()
}

// unblock clears the registration after the rank wakes (if a post has not
// already cleared it).
func (w *watchdog) unblock(rank int) {
	w.mu.Lock()
	delete(w.blocked, rank)
	w.nblocked.Store(int32(len(w.blocked)))
	w.mu.Unlock()
}

// satisfied clears rank's registration when a message with exactly the
// awaited key is posted.  Called with the destination's mailbox lock held —
// the same lock block() holds — so a registered rank provably has no
// satisfying message pending.
func (w *watchdog) satisfied(rank int, k key) {
	if w.nblocked.Load() == 0 {
		return
	}
	w.mu.Lock()
	if bk, ok := w.blocked[rank]; ok && bk == k {
		delete(w.blocked, rank)
		w.nblocked.Store(int32(len(w.blocked)))
	}
	w.mu.Unlock()
}

// finish records a rank whose body returned nil.
func (w *watchdog) finish(rank int) {
	w.mu.Lock()
	w.done++
	w.checkLocked()
	w.mu.Unlock()
}

// crash records a rank removed by an injected fault.  Unlike shutdown, the
// rest of the machine keeps running: messages the dead rank already posted
// stay consumable, and ranks that come to depend on it park until the
// watchdog proves global quiescence.  The final blocked configuration is a
// fixpoint of the (deterministic) per-rank programs, so crashed runs remain
// bit-reproducible.
func (w *watchdog) crash(rank int) {
	w.mu.Lock()
	w.dead = append(w.dead, rank)
	w.checkLocked()
	w.mu.Unlock()
}

// shutdown marks an abort in progress (peer panic or error return) so a
// concurrent or later quiescence check does not misreport the drain as a
// deadlock.
func (w *watchdog) shutdown() {
	w.mu.Lock()
	w.aborted = true
	w.mu.Unlock()
	w.machine.closeAll()
}

// checkLocked fires the watchdog when every live rank is parked.  Caller
// holds w.mu.
func (w *watchdog) checkLocked() {
	if w.aborted || len(w.blocked) == 0 {
		return
	}
	if len(w.blocked)+w.done+len(w.dead) != w.machine.n {
		return
	}
	w.aborted = true
	e := &DeadlockError{Dead: append([]int(nil), w.dead...)}
	for rank, k := range w.blocked {
		e.Blocked = append(e.Blocked, BlockedRank{Rank: rank, Src: k.source, Tag: k.tag})
	}
	sort.Slice(e.Blocked, func(i, j int) bool { return e.Blocked[i].Rank < e.Blocked[j].Rank })
	sort.Ints(e.Dead)
	w.err = e
	// Wake the parked ranks.  Closing takes each mailbox's lock and the
	// caller of block() still holds its own until cond.Wait releases it,
	// so the close must happen off this goroutine.
	go w.machine.closeAll()
}

// deadlock returns the deadlock error, if the watchdog fired.
func (w *watchdog) deadlock() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err == nil {
		return nil // typed nil must not escape into a non-nil error
	}
	return w.err
}
