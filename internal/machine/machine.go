// Package machine defines performance models of the distributed-memory
// computers used in the paper: the Intel Paragon, the Cray T3D and the IBM
// SP-2.  A Model translates abstract work (flops, memory traffic, message
// bytes) into virtual seconds for the sim package, and carries the cache
// geometry used by the single-node cache experiments.
//
// The parameters are calibrated, not measured: sustained per-node flop rates
// were chosen so that the simulated one-node AGCM run lands near the paper's
// Table 4/6 single-node timings, and network parameters follow published
// characterizations of the two machines.  The paper's conclusions are about
// ratios (speedups, component fractions, crossovers), which depend on the
// algorithms' operation and message counts rather than on these absolute
// constants.
package machine

import "fmt"

// Model is a linear (LogGP-flavoured) machine performance model plus the
// memory-hierarchy geometry of one node.
type Model struct {
	// Name identifies the machine in reports, e.g. "Intel Paragon".
	Name string

	// FlopRate is the sustained floating-point rate of one node in
	// flop/s for compiled inner-loop code (far below peak, as the paper
	// observes for real-world codes).
	FlopRate float64

	// MemBandwidth is the effective main-memory bandwidth of one node in
	// byte/s, charged for cache-missing traffic.
	MemBandwidth float64

	// CacheBytes, CacheLineBytes and CacheWays describe the node's data
	// cache, used by the cache simulator in the single-node experiments.
	CacheBytes     int
	CacheLineBytes int
	CacheWays      int

	// KernelFlopRate is the flop rate of a simple, cache-resident inner
	// loop (far above the whole-application FlopRate), and MissPenalty
	// is the stall per cache-line miss.  Together they drive the
	// single-node layout experiments of Section 3.4.
	KernelFlopRate float64
	MissPenalty    float64

	// SendOverhead and RecvOverhead are the per-message CPU occupancies
	// in seconds on the sender and receiver.
	SendOverhead float64
	RecvOverhead float64

	// Latency is the network wire latency per message in seconds.
	Latency float64

	// Bandwidth is the per-link network bandwidth in byte/s.
	Bandwidth float64
}

// FlopSeconds implements sim.CostModel.
func (m *Model) FlopSeconds(n float64) float64 { return n / m.FlopRate }

// MemSeconds implements sim.CostModel.
func (m *Model) MemSeconds(n float64) float64 { return n / m.MemBandwidth }

// SendOverheadSeconds implements sim.CostModel.
func (m *Model) SendOverheadSeconds(bytes int) float64 { return m.SendOverhead }

// RecvOverheadSeconds implements sim.CostModel.
func (m *Model) RecvOverheadSeconds(bytes int) float64 { return m.RecvOverhead }

// NetworkSeconds implements sim.CostModel.
func (m *Model) NetworkSeconds(bytes int) float64 {
	return m.Latency + float64(bytes)/m.Bandwidth
}

// String returns the machine name.
func (m *Model) String() string { return m.Name }

// Validate reports an error if any model parameter is non-positive.
func (m *Model) Validate() error {
	switch {
	case m.FlopRate <= 0:
		return fmt.Errorf("machine %q: FlopRate must be positive", m.Name)
	case m.MemBandwidth <= 0:
		return fmt.Errorf("machine %q: MemBandwidth must be positive", m.Name)
	case m.Bandwidth <= 0:
		return fmt.Errorf("machine %q: Bandwidth must be positive", m.Name)
	case m.Latency < 0 || m.SendOverhead < 0 || m.RecvOverhead < 0:
		return fmt.Errorf("machine %q: overheads must be non-negative", m.Name)
	case m.CacheBytes <= 0 || m.CacheLineBytes <= 0 || m.CacheWays <= 0:
		return fmt.Errorf("machine %q: cache geometry must be positive", m.Name)
	case m.KernelFlopRate <= 0 || m.MissPenalty <= 0:
		return fmt.Errorf("machine %q: kernel rate and miss penalty must be positive", m.Name)
	case m.CacheBytes%(m.CacheLineBytes*m.CacheWays) != 0:
		return fmt.Errorf("machine %q: cache size %d not divisible by line*ways",
			m.Name, m.CacheBytes)
	}
	return nil
}

// Paragon returns a model of one Intel Paragon XP/S node: an i860 XP at
// 50 MHz (75 Mflop/s peak) with an 16 KB data cache, on a 2-D mesh network.
// The sustained flop rate reflects the poor compiled-code efficiency the
// paper reports for the AGCM on this machine.
func Paragon() *Model {
	return &Model{
		Name:           "Intel Paragon",
		FlopRate:       3.2e6, // sustained, calibrated to Table 4's 1x1 run
		MemBandwidth:   24e6,  // effective miss bandwidth
		CacheBytes:     16384, // i860 XP 16 KB data cache
		CacheLineBytes: 32,
		CacheWays:      4,
		KernelFlopRate: 30e6,    // dual-operation pipelined loops out of cache
		MissPenalty:    0.70e-6, // ~35 cycles at 50 MHz
		SendOverhead:   60e-6,   // NX message-passing software overhead
		RecvOverhead:   60e-6,
		Latency:        100e-6,
		Bandwidth:      70e6,
	}
}

// CrayT3D returns a model of one Cray T3D node: a 150 MHz Alpha 21064
// (150 Mflop/s peak) with an 8 KB direct-mapped data cache and no board
// cache, on a 3-D torus.  The paper finds the AGCM about 2.5x faster per
// node on the T3D than on the Paragon.
func CrayT3D() *Model {
	return &Model{
		Name:           "Cray T3D",
		FlopRate:       8.0e6, // sustained, calibrated to Table 6's 1x1 run
		MemBandwidth:   85e6,  // DRAM read bandwidth seen by one PE
		CacheBytes:     8192,  // EV4 8 KB direct-mapped D-cache
		CacheLineBytes: 32,
		CacheWays:      1,
		KernelFlopRate: 25e6,    // EV4 simple loops out of cache
		MissPenalty:    0.16e-6, // ~24 cycles at 150 MHz (no board cache)
		SendOverhead:   15e-6,   // PVM/MPI layer over shmem
		RecvOverhead:   15e-6,
		Latency:        25e-6,
		Bandwidth:      120e6,
	}
}

// IBMSP2 returns a model of one IBM SP-2 thin node: a 66 MHz POWER2 with a
// large cache and a high-latency multistage switch.  The paper ran on the
// SP-2 but reports only that results were qualitatively similar.
func IBMSP2() *Model {
	return &Model{
		Name:           "IBM SP-2",
		FlopRate:       14.0e6,
		MemBandwidth:   150e6,
		CacheBytes:     65536, // POWER2 64 KB 4-way data cache
		CacheLineBytes: 64,
		CacheWays:      4,
		KernelFlopRate: 60e6,
		MissPenalty:    0.15e-6,
		SendOverhead:   30e-6,
		RecvOverhead:   30e-6,
		Latency:        40e-6,
		Bandwidth:      35e6,
	}
}

// Host returns a nominal model of one core of the machine this process is
// running on — a modern x86-64 server core, three decades past the paper's
// trio.  Unlike the 1996 models, whose constants are calibrated to published
// tables, these are placeholder ceilings: the roofline subsystem
// (internal/roofline) observes the real host with `agcmbench -calibrate` and
// fits a Calib whose measured ceilings and efficiencies supersede these
// numbers for prediction.  The model exists so that host-shaped configs are
// first-class citizens of the config schema — canonicalizable, servable, and
// usable in experiments — and so the simulated trio has a modern yardstick.
func Host() *Model {
	return &Model{
		Name:           "Host CPU",
		FlopRate:       2.0e9, // sustained scalar loops, one core
		MemBandwidth:   1.2e10,
		CacheBytes:     1 << 20, // per-core L2
		CacheLineBytes: 64,
		CacheWays:      16,
		KernelFlopRate: 8.0e9,
		MissPenalty:    3e-9, // ~10 ns to LLC/DRAM amortized
		SendOverhead:   0.3e-6,
		RecvOverhead:   0.3e-6,
		Latency:        1e-6,
		Bandwidth:      1e10,
	}
}

// Degraded returns a copy of the model with its processor slowed by the
// given factor (> 1), network untouched — a failing fan, a shared node, a
// slower board: the hardware-heterogeneity scenario an estimate-driven
// load balancer should absorb.
func Degraded(m *Model, factor float64) *Model {
	if factor <= 0 {
		panic(fmt.Sprintf("machine: invalid degradation factor %g", factor))
	}
	d := *m
	d.Name = fmt.Sprintf("%s (degraded %.1fx)", m.Name, factor)
	d.FlopRate = m.FlopRate / factor
	d.KernelFlopRate = m.KernelFlopRate / factor
	d.MemBandwidth = m.MemBandwidth / factor
	return &d
}

// All returns the three modelled machines in paper order.  Host is
// deliberately excluded: the paper experiments iterate All() and compare
// against the 1996 tables.  Host-model configs are reached through ByName.
func All() []*Model {
	return []*Model{Paragon(), CrayT3D(), IBMSP2()}
}

// ByName returns the model matching a machine name, case-insensitively and
// ignoring spaces and dashes.  Both the short names used on command lines
// ("paragon", "t3d", "sp2", "host") and every Model.Name round-trip:
// ByName(m.Name) returns a model equal to m for each m in All() and Host().
func ByName(name string) (*Model, error) {
	switch canonicalName(name) {
	case "paragon", "intelparagon":
		return Paragon(), nil
	case "t3d", "crayt3d":
		return CrayT3D(), nil
	case "sp2", "ibmsp2":
		return IBMSP2(), nil
	case "host", "hostcpu":
		return Host(), nil
	}
	return nil, fmt.Errorf(
		"machine: unknown machine %q (want paragon/\"Intel Paragon\", t3d/\"Cray T3D\", sp2/\"IBM SP-2\" or host/\"Host CPU\", any case)",
		name)
}

// canonicalName lower-cases a machine name and strips spaces and dashes, so
// "IBM SP-2" and "ibmsp2" compare equal.
func canonicalName(name string) string {
	out := make([]byte, 0, len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'A' && c <= 'Z':
			out = append(out, c+'a'-'A')
		case c == ' ' || c == '-' || c == '_':
		default:
			out = append(out, c)
		}
	}
	return string(out)
}
