package machine

import (
	"math"
	"testing"
)

func TestAllModelsValidate(t *testing.T) {
	for _, m := range All() {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
}

func TestValidateCatchesBadFields(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Model)
	}{
		{"zero flop rate", func(m *Model) { m.FlopRate = 0 }},
		{"zero mem bandwidth", func(m *Model) { m.MemBandwidth = 0 }},
		{"zero net bandwidth", func(m *Model) { m.Bandwidth = 0 }},
		{"negative latency", func(m *Model) { m.Latency = -1 }},
		{"negative send overhead", func(m *Model) { m.SendOverhead = -1 }},
		{"zero cache", func(m *Model) { m.CacheBytes = 0 }},
		{"indivisible cache", func(m *Model) { m.CacheBytes = 1000; m.CacheLineBytes = 32; m.CacheWays = 1 }},
	}
	for _, tc := range cases {
		m := Paragon()
		tc.mutate(m)
		if err := m.Validate(); err == nil {
			t.Errorf("%s: Validate() = nil, want error", tc.name)
		}
	}
}

func TestCostFunctions(t *testing.T) {
	m := &Model{
		Name: "test", FlopRate: 1e6, MemBandwidth: 1e7,
		CacheBytes: 1024, CacheLineBytes: 32, CacheWays: 1,
		SendOverhead: 1e-5, RecvOverhead: 2e-5,
		Latency: 1e-4, Bandwidth: 1e8,
	}
	if got := m.FlopSeconds(2e6); math.Abs(got-2.0) > 1e-12 {
		t.Errorf("FlopSeconds(2e6) = %g, want 2", got)
	}
	if got := m.MemSeconds(1e7); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("MemSeconds(1e7) = %g, want 1", got)
	}
	if got := m.SendOverheadSeconds(100); got != 1e-5 {
		t.Errorf("SendOverheadSeconds = %g, want 1e-5", got)
	}
	if got := m.RecvOverheadSeconds(100); got != 2e-5 {
		t.Errorf("RecvOverheadSeconds = %g, want 2e-5", got)
	}
	want := 1e-4 + 1e8/1e8*1e-8*1e8 // latency + bytes/bandwidth with bytes=1e8? keep explicit below
	_ = want
	if got := m.NetworkSeconds(1000); math.Abs(got-(1e-4+1000/1e8)) > 1e-15 {
		t.Errorf("NetworkSeconds(1000) = %g, want %g", got, 1e-4+1000/1e8)
	}
}

func TestT3DFasterThanParagon(t *testing.T) {
	// The paper reports the AGCM runs about 2.5x faster per node on the
	// T3D.  The calibrated sustained rates must preserve that ordering.
	p, c := Paragon(), CrayT3D()
	ratio := p.FlopSeconds(1) / c.FlopSeconds(1)
	if ratio < 2.0 || ratio > 3.0 {
		t.Errorf("T3D/Paragon per-flop speed ratio = %.2f, want in [2,3]", ratio)
	}
	if c.Latency >= p.Latency {
		t.Errorf("T3D latency %g should be below Paragon latency %g", c.Latency, p.Latency)
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"paragon", "t3d", "sp2", "Paragon", "T3D", "SP-2",
		"PARAGON", "Sp-2", "cray t3d", "ibm sp2"} {
		if _, err := ByName(name); err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
	if _, err := ByName("cm5"); err == nil {
		t.Errorf("ByName(cm5) should fail")
	}
	if _, err := ByName(""); err == nil {
		t.Errorf("ByName(\"\") should fail")
	}
}

func TestHostModel(t *testing.T) {
	h := Host()
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"host", "hostcpu", "Host CPU", "HOST"} {
		got, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if got.Name != h.Name {
			t.Fatalf("ByName(%q).Name = %q", name, got.Name)
		}
	}
	// The paper experiments iterate All(); the host must stay out of them.
	for _, m := range All() {
		if m.Name == h.Name {
			t.Fatal("Host leaked into All()")
		}
	}
	// Thirty years on, the host outruns every 1996 node.
	for _, m := range All() {
		if h.FlopRate <= m.FlopRate || h.MemBandwidth <= m.MemBandwidth {
			t.Fatalf("host model slower than %s", m.Name)
		}
	}
}

func TestByNameRoundTripsModelName(t *testing.T) {
	// The report header prints Model.Name; operators paste it back into
	// -machine.  Every display name must resolve to the same model.
	for _, m := range append(All(), Host()) {
		got, err := ByName(m.Name)
		if err != nil {
			t.Errorf("ByName(%q): %v", m.Name, err)
			continue
		}
		if got.Name != m.Name {
			t.Errorf("ByName(%q).Name = %q", m.Name, got.Name)
		}
	}
}

func TestDegraded(t *testing.T) {
	base := CrayT3D()
	d := Degraded(base, 2)
	if d.FlopRate != base.FlopRate/2 || d.KernelFlopRate != base.KernelFlopRate/2 {
		t.Errorf("processor rates not halved")
	}
	if d.Latency != base.Latency || d.Bandwidth != base.Bandwidth {
		t.Errorf("network must be untouched")
	}
	if base.FlopRate != CrayT3D().FlopRate {
		t.Errorf("Degraded mutated its input")
	}
	if err := d.Validate(); err != nil {
		t.Errorf("degraded model invalid: %v", err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Errorf("factor 0 accepted")
			}
		}()
		Degraded(base, 0)
	}()
}

func TestStringReturnsName(t *testing.T) {
	if got := Paragon().String(); got != "Intel Paragon" {
		t.Errorf("String() = %q", got)
	}
}
