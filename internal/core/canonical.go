package core

// Canonical config serialization: the content-addressing layer under the
// agcmd result cache.  The virtual machine is bit-deterministic — identical
// Configs produce byte-identical Reports — so a stable, injective encoding
// of Config is a sound cache key for whole simulation runs.
//
// Canonical form is the defaulted config (withDefaults applied), encoded as
// JSON with a fixed field set and field order.  Two Configs that differ only
// in defaulted fields (e.g. Dt=0 versus the CFL-derived value) canonicalize
// to the same bytes, so they alias in a cache — which is exactly right,
// because they run the same simulation.  Decoding rejects unknown fields so
// a misspelled field can never silently alias two genuinely different
// requests onto one key.

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"agcm/internal/fault"
	"agcm/internal/machine"
	"agcm/internal/physics"
)

// FilterVariantByName returns the variant whose String() form matches name;
// it also accepts the short command-line aliases ("conv", "fft-lb", ...).
// Every variant round-trips: FilterVariantByName(v.String()) == v.
func FilterVariantByName(name string) (FilterVariant, error) {
	switch name {
	case "conv", "convolution", "convolution-ring":
		return FilterConvolutionRing, nil
	case "conv-tree", "convolution-tree":
		return FilterConvolutionTree, nil
	case "fft":
		return FilterFFT, nil
	case "fft-lb", "fft-load-balanced":
		return FilterFFTBalanced, nil
	case "fft-rowwise":
		return FilterFFTRowwise, nil
	case "polar-diffusion", "polar-implicit-diffusion":
		return FilterPolarDiffusion, nil
	case "none":
		return FilterNone, nil
	}
	return 0, fmt.Errorf(
		"core: unknown filter %q (conv, conv-tree, fft, fft-lb, fft-rowwise, polar-diffusion, none)", name)
}

// canonicalConfig is the wire form of a Config: every field the simulation
// observes, in a fixed order, with enums and sub-specs as strings.  No field
// carries omitempty, so the encoded byte layout is fully determined by the
// values alone.
type canonicalConfig struct {
	Nlon              int     `json:"nlon"`
	Nlat              int     `json:"nlat"`
	Nlayers           int     `json:"nlayers"`
	Machine           string  `json:"machine"`
	MeshPy            int     `json:"mesh_py"`
	MeshPx            int     `json:"mesh_px"`
	Filter            string  `json:"filter"`
	PhysicsScheme     string  `json:"physics_scheme"`
	PhysicsRounds     int     `json:"physics_rounds"`
	Dt                float64 `json:"dt"`
	InitWind          float64 `json:"init_wind"`
	VerticalDiffusion float64 `json:"vertical_diffusion"`
	WarmupSteps       int     `json:"warmup_steps"`
	DegradeRank       int     `json:"degrade_rank"`
	DegradeFactor     float64 `json:"degrade_factor"`
	EventLog          bool    `json:"event_log"`
	CaptureState      bool    `json:"capture_state"`
	CheckpointEvery   int     `json:"checkpoint_every"`
	Fault             string  `json:"fault"`
	Topology          string  `json:"topology"`
	Placement         string  `json:"placement"`
}

// CanonicalJSON returns the canonical encoding of the config: defaults
// applied, fields in fixed order, enums by name.  It fails on configs that
// cannot be represented on the wire — an in-memory InitialState checkpoint,
// a machine model (e.g. a Degraded copy) whose name does not round-trip
// through machine.ByName — and on configs withDefaults rejects.
func (c Config) CanonicalJSON() ([]byte, error) {
	cfg, err := c.withDefaults()
	if err != nil {
		return nil, err
	}
	if cfg.InitialState != nil {
		return nil, fmt.Errorf("core: config with an in-memory InitialState has no canonical form")
	}
	if _, err := machine.ByName(cfg.Machine.Name); err != nil {
		return nil, fmt.Errorf("core: machine %q has no canonical form: %w", cfg.Machine.Name, err)
	}
	if _, err := FilterVariantByName(cfg.Filter.String()); err != nil {
		return nil, err
	}
	if _, err := physics.SchemeByName(cfg.PhysicsScheme.String()); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	faultStr := ""
	if !cfg.Fault.Empty() {
		faultStr = cfg.Fault.String()
	}
	topology := cfg.Topology
	if topology == "none" {
		topology = ""
	}
	return json.Marshal(canonicalConfig{
		Nlon:              cfg.Spec.Nlon,
		Nlat:              cfg.Spec.Nlat,
		Nlayers:           cfg.Spec.Nlayers,
		Machine:           cfg.Machine.Name,
		MeshPy:            cfg.MeshPy,
		MeshPx:            cfg.MeshPx,
		Filter:            cfg.Filter.String(),
		PhysicsScheme:     cfg.PhysicsScheme.String(),
		PhysicsRounds:     cfg.PhysicsRounds,
		Dt:                cfg.Dt,
		InitWind:          cfg.InitWind,
		VerticalDiffusion: cfg.VerticalDiffusion,
		WarmupSteps:       cfg.WarmupSteps,
		DegradeRank:       cfg.DegradeRank,
		DegradeFactor:     cfg.DegradeFactor,
		EventLog:          cfg.EventLog,
		CaptureState:      cfg.CaptureState,
		CheckpointEvery:   cfg.CheckpointEvery,
		Fault:             faultStr,
		Topology:          topology,
		Placement:         cfg.Placement,
	})
}

// ConfigKey returns the SHA-256 of the canonical encoding as lowercase hex:
// the content address of this simulation.  Configs that canonicalize to the
// same bytes run the same simulation and may share a cached Report.
func (c Config) ConfigKey() (string, error) {
	raw, err := c.CanonicalJSON()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:]), nil
}

// ConfigFromCanonicalJSON decodes a canonical (or hand-written request)
// config.  Unknown fields are rejected — a typo must fail loudly rather
// than alias onto the key of the config without the field.  Fields left out
// take the usual defaults, exactly as the zero Config does.
func ConfigFromCanonicalJSON(data []byte) (Config, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var w canonicalConfig
	// On the wire warmup_steps is the actual warmup count (0 = none) and an
	// absent field means "the default".  Sentinels distinguish the cases,
	// since Config itself spells "none" as negative and "default" as 0.
	w.WarmupSteps = -1
	w.DegradeRank = -1
	if err := dec.Decode(&w); err != nil {
		return Config{}, fmt.Errorf("core: decoding canonical config: %w", err)
	}
	if dec.More() {
		return Config{}, fmt.Errorf("core: trailing data after canonical config")
	}
	var c Config
	c.Spec.Nlon, c.Spec.Nlat, c.Spec.Nlayers = w.Nlon, w.Nlat, w.Nlayers
	if w.Machine == "" {
		return Config{}, fmt.Errorf("core: canonical config missing machine")
	}
	m, err := machine.ByName(w.Machine)
	if err != nil {
		return Config{}, err
	}
	c.Machine = m
	c.MeshPy, c.MeshPx = w.MeshPy, w.MeshPx
	if w.Filter != "" {
		v, err := FilterVariantByName(w.Filter)
		if err != nil {
			return Config{}, err
		}
		c.Filter = v
	}
	if w.PhysicsScheme != "" {
		s, err := physics.SchemeByName(w.PhysicsScheme)
		if err != nil {
			return Config{}, fmt.Errorf("core: %w", err)
		}
		c.PhysicsScheme = s
	}
	c.PhysicsRounds = w.PhysicsRounds
	c.Dt = w.Dt
	c.InitWind = w.InitWind
	c.VerticalDiffusion = w.VerticalDiffusion
	switch {
	case w.WarmupSteps < 0: // absent: take the default
		c.WarmupSteps = 0
	case w.WarmupSteps == 0: // explicit zero: no warmup
		c.WarmupSteps = -1
	default:
		c.WarmupSteps = w.WarmupSteps
	}
	c.DegradeRank = w.DegradeRank
	c.DegradeFactor = w.DegradeFactor
	if c.DegradeFactor == 0 {
		c.DegradeRank = -1
	}
	c.EventLog = w.EventLog
	c.CaptureState = w.CaptureState
	c.CheckpointEvery = w.CheckpointEvery
	if w.Fault != "" {
		spec, err := fault.Parse(w.Fault)
		if err != nil {
			return Config{}, err
		}
		c.Fault = spec
	}
	c.Topology = w.Topology
	c.Placement = w.Placement
	return c, nil
}
