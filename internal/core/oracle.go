package core

import "fmt"

// CostOracle prices a job for admission scheduling without running it.  The
// built-in linear oracle is PredictCost; internal/roofline provides a
// calibrated roofline oracle that predicts real host seconds.  The interface
// lives here (not in the oracle packages) so that server and workload can
// depend on an oracle without core depending on its implementations.
//
// PredictSeconds must be a pure function of the canonicalized config and the
// step count — equal ConfigKeys must predict equal costs — because the sjf
// scheduler's ordering, and therefore the daemon's observable behaviour,
// follows it.
type CostOracle interface {
	// Name identifies the oracle in logs and metrics, e.g. "linear" or
	// "roofline:host".
	Name() string
	// PredictSeconds estimates the seconds a run of cfg for measuredSteps
	// measured steps will consume (including warmup), or an error for
	// configs it cannot price.
	PredictSeconds(cfg Config, measuredSteps int) (float64, error)
}

// PredictCostWith prices a job with the given oracle, or with the built-in
// linear PredictCost when oracle is nil.  Degenerate inputs (invalid config,
// zero or negative steps) error before the oracle is consulted, so every
// oracle shares one front door for the edge cases.
func PredictCostWith(oracle CostOracle, cfg Config, measuredSteps int) (float64, error) {
	if oracle == nil {
		return PredictCost(cfg, measuredSteps)
	}
	if _, err := cfg.withDefaults(); err != nil {
		return 0, err
	}
	if measuredSteps < 1 {
		return 0, fmt.Errorf("core: need at least one measured step")
	}
	return oracle.PredictSeconds(cfg, measuredSteps)
}

// Normalized returns the config with defaults and derived fields filled
// (time step, warmup, physics rounds), validating the grid, machine and
// mesh.  It is the exported form of the normalization every Run performs,
// for oracles and analyzers that must count work exactly the way the run
// will perform it.
func (c Config) Normalized() (Config, error) {
	return c.withDefaults()
}
