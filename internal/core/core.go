// Package core assembles the full parallel AGCM: the C-grid dynamical core,
// the polar spectral filter (in any of the paper's variants), the column
// physics with optional load balancing, and the virtual-time machine — and
// reports per-component timings in the paper's unit, seconds per simulated
// day.  This is the package the command-line tools, the examples and the
// benchmark harness drive.
package core

import (
	"context"
	"fmt"
	"math"

	"agcm/internal/comm"
	"agcm/internal/dynamics"
	"agcm/internal/fault"
	"agcm/internal/filter"
	"agcm/internal/grid"
	"agcm/internal/history"
	"agcm/internal/machine"
	"agcm/internal/physics"
	"agcm/internal/sim"
	"agcm/internal/topology"
)

// FilterVariant selects the spectral-filtering implementation.
type FilterVariant int

const (
	// FilterConvolutionRing is the original code's physical-space
	// convolution with ring data motion.
	FilterConvolutionRing FilterVariant = iota
	// FilterConvolutionTree is the original convolution with binary-tree
	// data motion.
	FilterConvolutionTree
	// FilterFFT is the transpose-based FFT filter without load balancing.
	FilterFFT
	// FilterFFTBalanced is the paper's load-balanced FFT filter.
	FilterFFTBalanced
	// FilterNone disables filtering (numerically unstable at full time
	// steps; useful only for demonstrations with reduced dt).
	FilterNone
	// FilterPolarDiffusion replaces spectral filtering with implicit
	// zonal diffusion solved by the distributed periodic tridiagonal
	// solver — the Section 5 "implicit time-differencing" alternative.
	FilterPolarDiffusion
	// FilterFFTRowwise is Section 3.2's approach 1 — the parallel 1-D
	// FFT within mesh rows (allgather + redundant transforms) — that the
	// paper analysed and rejected in favour of the transpose.
	FilterFFTRowwise
)

// String returns the variant name used in reports.
func (v FilterVariant) String() string {
	switch v {
	case FilterConvolutionRing:
		return "convolution-ring"
	case FilterConvolutionTree:
		return "convolution-tree"
	case FilterFFT:
		return "fft"
	case FilterFFTBalanced:
		return "fft-load-balanced"
	case FilterNone:
		return "none"
	case FilterPolarDiffusion:
		return "polar-implicit-diffusion"
	case FilterFFTRowwise:
		return "fft-rowwise"
	}
	return fmt.Sprintf("FilterVariant(%d)", int(v))
}

// Config describes one AGCM run.
type Config struct {
	// Spec is the global grid; the paper's standard is
	// grid.TwoByTwoPointFive(9) or (15).
	Spec grid.Spec
	// Machine is the simulated computer (machine.Paragon() etc.).
	Machine *machine.Model
	// MeshPy x MeshPx is the processor mesh (latitude x longitude).
	MeshPy, MeshPx int
	// Filter selects the spectral-filter variant.
	Filter FilterVariant
	// PhysicsScheme and PhysicsRounds configure physics load balancing.
	PhysicsScheme physics.Scheme
	PhysicsRounds int
	// Dt is the time step in seconds; 0 derives it from the CFL limit at
	// the strong filter's critical latitude (the filter's whole point).
	Dt float64
	// InitWind is the initial jet speed in m/s (default 20).
	InitWind float64
	// VerticalDiffusion is the dimensionless implicit vertical mixing
	// number per step (0 = off); solved per column with the Thomas
	// algorithm.
	VerticalDiffusion float64
	// WarmupSteps are integrated but excluded from timing (leapfrog
	// startup, physics load-estimate priming).  Default 2; a negative
	// value disables warmup entirely (used when continuing from a
	// checkpoint, where re-warming would integrate extra steps).
	WarmupSteps int
	// DegradeRank, if >= 0, slows that one rank's processor by
	// DegradeFactor (> 1) — the hardware-heterogeneity scenario for the
	// load-balancing experiments.
	DegradeRank   int
	DegradeFactor float64
	// EventLog records a per-rank event timeline on Report.Raw for the
	// trace package's Chrome-trace export.
	EventLog bool
	// InitialState, if non-nil, restores a checkpoint (written by a
	// previous run's CaptureState) instead of the analytic initial
	// condition.  The grid must match.
	InitialState *history.File
	// CaptureState gathers the full final model state into
	// Report.FinalState for checkpointing.
	CaptureState bool
	// CheckpointEvery > 0 saves a full-state checkpoint every that many
	// measured steps; completed checkpoints appear on Report.Checkpoints
	// (oldest first) even when the run itself fails, which is what makes
	// crash recovery possible.
	CheckpointEvery int
	// Fault optionally injects a deterministic failure scenario
	// (slowdowns, jitter, drops, crashes) into the simulated machine.
	// All faults are scheduled in virtual time from the spec's seed, so
	// a faulty run is exactly as reproducible as a healthy one.
	Fault *fault.Spec
	// Topology, when non-empty and not "none", replaces the flat network
	// with a routed interconnect model (see topology.ByName): "auto" picks
	// the machine's historical topology, or name one explicitly ("mesh",
	// "mesh:XxY", "torus", "torus:XxYxZ", "switch").  The routed model
	// charges hop latency and injection-port queueing per message and
	// records per-link traffic on Report.Network.
	Topology string
	// Placement lays the ranks out on the topology's nodes (see
	// topology.PlacementByName): "rowmajor" (default), "snake", "blocked"
	// or "perm:n0,n1,...".  Ignored without a Topology.
	Placement string
}

// withDefaults fills derived and defaulted fields.
func (c Config) withDefaults() (Config, error) {
	if err := c.Spec.Validate(); err != nil {
		return c, err
	}
	if c.Machine == nil {
		return c, fmt.Errorf("core: nil machine model")
	}
	if c.MeshPy < 1 || c.MeshPx < 1 {
		return c, fmt.Errorf("core: invalid mesh %dx%d", c.MeshPy, c.MeshPx)
	}
	if c.Dt == 0 {
		c.Dt = 0.8 * dynamics.CFLTimeStep(c.Spec, filter.Strong.CritLat())
	}
	if c.Dt <= 0 {
		return c, fmt.Errorf("core: invalid dt %g", c.Dt)
	}
	if c.InitWind == 0 {
		c.InitWind = 20
	}
	if c.WarmupSteps == 0 {
		c.WarmupSteps = 2
	}
	if c.WarmupSteps < 0 {
		c.WarmupSteps = 0
	}
	if c.Fault != nil {
		if err := c.Fault.Validate(); err != nil {
			return c, err
		}
		for _, r := range c.Fault.Ranks() {
			if r >= c.MeshPy*c.MeshPx {
				return c, fmt.Errorf("core: fault spec names rank %d outside the %dx%d mesh",
					r, c.MeshPy, c.MeshPx)
			}
		}
	}
	if c.PhysicsRounds == 0 {
		c.PhysicsRounds = 2
	}
	if c.DegradeFactor == 0 {
		c.DegradeRank = -1
	}
	if c.DegradeRank >= c.MeshPy*c.MeshPx {
		return c, fmt.Errorf("core: degraded rank %d outside mesh", c.DegradeRank)
	}
	if c.DegradeRank >= 0 && c.DegradeFactor <= 1 {
		return c, fmt.Errorf("core: degrade factor must exceed 1, got %g", c.DegradeFactor)
	}
	return c, nil
}

// StepsPerDay returns the number of time steps in one simulated day for the
// configured (or derived) dt.
func (c Config) StepsPerDay() int {
	cfg, err := c.withDefaults()
	if err != nil {
		return 0
	}
	return int(math.Ceil(86400 / cfg.Dt))
}

// Report holds the timing results of a run, in the paper's unit of
// seconds per simulated day of the slowest rank (the critical path).
type Report struct {
	Config      Config
	Ranks       int
	Steps       int // measured steps (after warmup)
	StepsPerDay int

	// Component times in seconds/simulated-day: FilterTime + FDTime +
	// CommTime make up Dynamics; Total adds Physics and any slack.
	FilterTime  float64
	FDTime      float64
	CommTime    float64
	Dynamics    float64
	PhysicsTime float64
	Total       float64

	// PhysicsLoads is the per-rank physics time (seconds/day), the input
	// to the paper's Tables 1-3 style imbalance analysis.
	PhysicsLoads []float64
	// FilterLoads is the per-rank filter time (seconds/day).
	FilterLoads []float64

	// MessagesPerStep and BytesPerStep are the machine-wide
	// point-to-point traffic per time step — the quantities the paper's
	// Section 3 complexity analysis counts for each algorithm.
	MessagesPerStep float64
	BytesPerStep    float64
	// MaxWaitShare is the largest per-rank fraction of measured time
	// spent blocked on unarrived messages (latency + imbalance idling).
	MaxWaitShare float64

	// MaxAbsH is the final max |h| as a stability diagnostic.
	MaxAbsH float64

	// FinalState is the gathered model state when Config.CaptureState
	// was set (nil otherwise); feed it back via Config.InitialState to
	// continue the run.
	FinalState *history.File

	// Checkpoints holds the periodic checkpoints taken when
	// Config.CheckpointEvery was set, oldest first.  Only checkpoints
	// that completed their collective gather appear here, so after a
	// crash the last entry is always a consistent restart point.
	Checkpoints []*history.File

	// Raw is the underlying simulation result (clocks, accounts,
	// traffic), for the trace package's utilization views.
	Raw *sim.Result

	// Network is the routed interconnect model when Config.Topology was
	// set (nil otherwise): per-link traffic via Network.LinkStats, and —
	// with Config.EventLog — deterministic contention replay via
	// Network.Contend.
	Network *topology.Network
}

// Imbalance returns (max-avg)/avg of a load vector (paper's definition).
func Imbalance(loads []float64) float64 {
	if len(loads) == 0 {
		return 0
	}
	sum, max := 0.0, 0.0
	for _, v := range loads {
		sum += v
		if v > max {
			max = v
		}
	}
	avg := sum / float64(len(loads))
	if avg == 0 {
		return 0
	}
	return (max - avg) / avg
}

// timing categories
var categories = []string{"filter", "dynamics-fd", "dynamics-comm", "physics"}

// Run integrates the model for measuredSteps time steps (after warmup) on
// the simulated machine and returns per-component timings extrapolated to
// seconds per simulated day.
func Run(cfg Config, measuredSteps int) (*Report, error) {
	//lint:allow ctxflow Run is the deliberately deadline-free entry point; callers needing cancellation use RunContext
	return RunContext(context.Background(), cfg, measuredSteps)
}

// RunContext is Run under a deadline: when ctx is cancelled or expires the
// virtual machine shuts down at the ranks' next communication points and
// RunContext returns a *sim.CanceledError (errors.Is-able against
// context.Canceled / context.DeadlineExceeded).  As with an injected crash,
// the partial Report still carries any checkpoints that completed before the
// cancellation, so a timed-out run can be resumed rather than redone.
func RunContext(ctx context.Context, cfg Config, measuredSteps int) (*Report, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if measuredSteps < 1 {
		return nil, fmt.Errorf("core: need at least one measured step")
	}
	d, err := grid.NewDecomp(cfg.Spec, cfg.MeshPy, cfg.MeshPx)
	if err != nil {
		return nil, err
	}
	ranks := cfg.MeshPy * cfg.MeshPx
	stepsPerDay := int(math.Ceil(86400 / cfg.Dt))

	type snapshot struct {
		clock    float64
		accounts map[string]float64
		messages int64
		bytes    int64
		wait     float64
	}
	warm := make([]snapshot, ranks)
	maxAbsH := make([]float64, ranks)
	var finalState *history.File
	// All ranks must agree on whether to run the LoadState collective;
	// only rank 0 holds the file itself.
	restoreAny := cfg.InitialState != nil

	var m *sim.Machine
	if cfg.DegradeRank >= 0 {
		models := make([]sim.CostModel, ranks)
		for i := range models {
			models[i] = cfg.Machine
		}
		models[cfg.DegradeRank] = machine.Degraded(cfg.Machine, cfg.DegradeFactor)
		m = sim.NewHeterogeneous(models)
	} else {
		m = sim.New(ranks, cfg.Machine)
	}
	if cfg.EventLog {
		m.EnableEventLog()
	}
	var network *topology.Network
	if cfg.Topology != "" && cfg.Topology != "none" {
		topo, err := topology.ByName(cfg.Topology, cfg.Machine.Name, ranks)
		if err != nil {
			return nil, err
		}
		place, err := topology.PlacementByName(cfg.Placement, topo)
		if err != nil {
			return nil, err
		}
		network, err = topology.NewNetwork(topo, place, cfg.Machine)
		if err != nil {
			return nil, err
		}
		m.SetRouteModel(network)
	} else if cfg.Placement != "" {
		return nil, fmt.Errorf("core: placement %q needs a topology", cfg.Placement)
	}
	if !cfg.Fault.Empty() {
		m.SetFaultHook(fault.NewInjector(cfg.Fault))
	}
	// Only rank 0's goroutine appends; the main goroutine reads after the
	// machine's WaitGroup establishes the happens-before edge.
	var checkpoints []*history.File
	res, err := m.RunContext(ctx, func(p *sim.Proc) error {
		world := comm.World(p)
		cart := comm.NewCart2D(world, cfg.MeshPy, cfg.MeshPx)
		local := grid.NewLocal(d, cart.MyRow, cart.MyCol)

		state := dynamics.NewState(local)
		dynamics.InitSolidBody(state, cfg.InitWind, 4)
		if cfg.InitialState != nil || restoreAny {
			var file *history.File
			if world.Rank() == 0 {
				file = cfg.InitialState
			}
			if err := dynamics.LoadState(world, cart, file, state); err != nil {
				return err
			}
		}

		var flt filter.Parallel
		switch cfg.Filter {
		case FilterConvolutionRing:
			flt = filter.NewConvolution(cart, cfg.Spec, local, filter.Ring)
		case FilterConvolutionTree:
			flt = filter.NewConvolution(cart, cfg.Spec, local, filter.Tree)
		case FilterFFT:
			flt = filter.NewFFT(cart, cfg.Spec, local, false)
		case FilterFFTBalanced:
			flt = filter.NewFFT(cart, cfg.Spec, local, true)
		case FilterNone:
			flt = nil
		case FilterPolarDiffusion:
			flt = filter.NewPolarDiffusion(cart, cfg.Spec, local)
		case FilterFFTRowwise:
			flt = filter.NewRowwiseFFT(cart, cfg.Spec, local)
		default:
			return fmt.Errorf("core: unknown filter variant %d", cfg.Filter)
		}
		dyn := dynamics.New(cart, cfg.Spec, local, cfg.Dt, flt)
		if cfg.VerticalDiffusion > 0 {
			dyn.SetVerticalDiffusion(cfg.VerticalDiffusion)
		}
		phys := physics.NewRunner(world, cart, local,
			physics.NewModel(cfg.Spec, stepsPerDay), cfg.PhysicsScheme, cfg.PhysicsRounds)

		// The physics phase index is the state's own step counter rather
		// than a run-local loop index, so a run continued from a restored
		// checkpoint sees the same solar geometry and cloud epochs as the
		// uninterrupted run it resumes (state.Steps-1 equals the old
		// loop index on a fresh start, leaving healthy runs bit-identical).
		step := func() {
			dyn.Step(state)
			p.Timed("physics", func() { phys.Step(state.T, state.Q, state.Steps-1) })
		}
		for n := 0; n < cfg.WarmupSteps; n++ {
			step()
		}
		snap := snapshot{
			clock:    p.Clock(),
			accounts: make(map[string]float64),
			messages: p.MessagesSent(),
			bytes:    p.BytesSent(),
			wait:     p.WaitSeconds(),
		}
		for _, cat := range categories {
			snap.accounts[cat] = p.Accounted(cat)
		}
		warm[world.Rank()] = snap
		for n := 0; n < measuredSteps; n++ {
			step()
			if cfg.CheckpointEvery > 0 && (n+1)%cfg.CheckpointEvery == 0 {
				if f := dynamics.SaveState(world, cart, state); world.Rank() == 0 {
					checkpoints = append(checkpoints, f)
				}
			}
		}
		maxAbsH[world.Rank()] = state.H.MaxAbs()
		if cfg.CaptureState {
			if f := dynamics.SaveState(world, cart, state); world.Rank() == 0 {
				finalState = f
			}
		}
		return nil
	})
	if err != nil {
		// A failed run (e.g. an injected crash) still surfaces whatever
		// checkpoints completed, so the caller can restart from the last
		// one; the timing fields are meaningless and stay zero.
		return &Report{
			Config:      cfg,
			Raw:         res,
			Ranks:       ranks,
			StepsPerDay: stepsPerDay,
			Checkpoints: checkpoints,
			Network:     network,
		}, err
	}

	// Scale measured virtual times to seconds/simulated-day.
	scale := float64(stepsPerDay) / float64(measuredSteps)
	perRank := func(cat string) []float64 {
		out := make([]float64, ranks)
		// A category nothing timed (e.g. "filter" under FilterNone) has no
		// accounts entry; its per-rank load is zero, not a panic.
		acct := res.Accounts[cat]
		for r := 0; r < ranks && r < len(acct); r++ {
			out[r] = (acct[r] - warm[r].accounts[cat]) * scale
		}
		return out
	}
	maxOf := func(v []float64) float64 {
		max := 0.0
		for _, x := range v {
			if x > max {
				max = x
			}
		}
		return max
	}
	filterLoads := perRank("filter")
	fd := perRank("dynamics-fd")
	cm := perRank("dynamics-comm")
	physLoads := perRank("physics")

	// Per-rank Dynamics time, then critical path across ranks.
	dynLoads := make([]float64, ranks)
	totalLoads := make([]float64, ranks)
	for r := 0; r < ranks; r++ {
		dynLoads[r] = filterLoads[r] + fd[r] + cm[r]
		totalLoads[r] = (res.Clocks[r] - warm[r].clock) * scale
	}

	var msgs, bts float64
	maxWaitShare := 0.0
	for r := 0; r < ranks; r++ {
		msgs += float64(res.MessagesSent[r] - warm[r].messages)
		bts += float64(res.BytesSent[r] - warm[r].bytes)
		if span := res.Clocks[r] - warm[r].clock; span > 0 {
			if share := (res.WaitSeconds[r] - warm[r].wait) / span; share > maxWaitShare {
				maxWaitShare = share
			}
		}
	}

	rep := &Report{
		Config:          cfg,
		Raw:             res,
		Ranks:           ranks,
		Steps:           measuredSteps,
		StepsPerDay:     stepsPerDay,
		MessagesPerStep: msgs / float64(measuredSteps),
		BytesPerStep:    bts / float64(measuredSteps),
		MaxWaitShare:    maxWaitShare,
		FilterTime:      maxOf(filterLoads),
		FDTime:          maxOf(fd),
		CommTime:        maxOf(cm),
		Dynamics:        maxOf(dynLoads),
		PhysicsTime:     maxOf(physLoads),
		Total:           maxOf(totalLoads),
		PhysicsLoads:    physLoads,
		FilterLoads:     filterLoads,
		MaxAbsH:         maxOf(maxAbsH),
		FinalState:      finalState,
		Checkpoints:     checkpoints,
		Network:         network,
	}
	return rep, nil
}

// Snapshot runs the model for `steps` steps on a 1x1 mesh and returns a
// history file of the prognostic fields — a convenience for examples and
// round-trip tests of the history IO.
func Snapshot(cfg Config, steps int) (*history.File, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	cfg.MeshPy, cfg.MeshPx = 1, 1
	d, err := grid.NewDecomp(cfg.Spec, 1, 1)
	if err != nil {
		return nil, err
	}
	stepsPerDay := int(math.Ceil(86400 / cfg.Dt))
	file := &history.File{Spec: cfg.Spec, Step: steps}
	m := sim.New(1, cfg.Machine)
	if _, err := m.Run(func(p *sim.Proc) error {
		world := comm.World(p)
		cart := comm.NewCart2D(world, 1, 1)
		local := grid.NewLocal(d, 0, 0)
		state := dynamics.NewState(local)
		dynamics.InitSolidBody(state, cfg.InitWind, 4)
		flt := filter.NewFFT(cart, cfg.Spec, local, true)
		dyn := dynamics.New(cart, cfg.Spec, local, cfg.Dt, flt)
		phys := physics.NewRunner(world, cart, local,
			physics.NewModel(cfg.Spec, stepsPerDay), physics.None, 1)
		for n := 0; n < steps; n++ {
			dyn.Step(state)
			phys.Step(state.T, state.Q, n)
		}
		for _, v := range []struct {
			name string
			f    *grid.Field
		}{{"u", state.U}, {"v", state.V}, {"h", state.H}, {"T", state.T}, {"q", state.Q}} {
			if err := file.AddVariable(v.name, grid.Gather(world, cart, v.f)); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return nil, err
	}
	return file, nil
}
