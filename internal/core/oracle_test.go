package core

import (
	"fmt"
	"testing"

	"agcm/internal/grid"
	"agcm/internal/machine"
)

// TestPredictCostDegenerateConfigs table-drives the edge cases the oracle
// front door must reject: the sjf scheduler relies on an error (not a bogus
// number) to trigger its fcfs fallback.
func TestPredictCostDegenerateConfigs(t *testing.T) {
	good := predictConfig(36, 24, 3, 1, 1)
	cases := []struct {
		name  string
		cfg   Config
		steps int
	}{
		{"zero config", Config{}, 1},
		{"zero steps", good, 0},
		{"negative steps", good, -3},
		{"zero ranks", func() Config { c := good; c.MeshPy, c.MeshPx = 0, 0; return c }(), 1},
		{"zero mesh py", func() Config { c := good; c.MeshPy = 0; return c }(), 1},
		{"negative mesh px", func() Config { c := good; c.MeshPx = -2; return c }(), 1},
		{"nil machine", func() Config { c := good; c.Machine = nil; return c }(), 1},
		{"degenerate grid", func() Config { c := good; c.Spec = grid.Spec{Nlon: 2, Nlat: 2, Nlayers: 0}; return c }(), 1},
		{"negative dt", func() Config { c := good; c.Dt = -1; return c }(), 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := PredictCost(tc.cfg, tc.steps); err == nil {
				t.Fatalf("PredictCost accepted %s", tc.name)
			}
			// The oracle front door must reject identically, and must do so
			// before consulting any installed oracle.
			oracle := &countingOracle{seconds: 42}
			if _, err := PredictCostWith(oracle, tc.cfg, tc.steps); err == nil {
				t.Fatalf("PredictCostWith accepted %s", tc.name)
			}
			if oracle.calls != 0 {
				t.Fatalf("oracle consulted for %s", tc.name)
			}
		})
	}
}

type countingOracle struct {
	seconds float64
	err     error
	calls   int
}

func (o *countingOracle) Name() string { return "counting" }

func (o *countingOracle) PredictSeconds(cfg Config, steps int) (float64, error) {
	o.calls++
	if o.err != nil {
		return 0, o.err
	}
	return o.seconds, nil
}

func TestPredictCostWithNilMatchesLinear(t *testing.T) {
	cfg := predictConfig(36, 24, 3, 2, 2)
	want, err := PredictCost(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := PredictCostWith(nil, cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("nil oracle diverges from PredictCost: %g vs %g", got, want)
	}
}

func TestPredictCostWithConsultsOracle(t *testing.T) {
	cfg := predictConfig(36, 24, 3, 1, 1)
	oracle := &countingOracle{seconds: 7.5}
	got, err := PredictCostWith(oracle, cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got != 7.5 || oracle.calls != 1 {
		t.Fatalf("oracle not consulted exactly once: got %g, calls %d", got, oracle.calls)
	}

	failing := &countingOracle{err: fmt.Errorf("no price")}
	if _, err := PredictCostWith(failing, cfg, 2); err == nil {
		t.Fatal("oracle error swallowed")
	}
}

func TestNormalizedFillsDefaults(t *testing.T) {
	cfg := Config{
		Spec:    grid.Spec{Nlon: 36, Nlat: 24, Nlayers: 3},
		Machine: machine.Paragon(),
		MeshPy:  1, MeshPx: 1,
	}
	norm, err := cfg.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	if norm.Dt <= 0 || norm.WarmupSteps != 2 || norm.PhysicsRounds != 2 {
		t.Fatalf("defaults not applied: dt=%g warmup=%d rounds=%d",
			norm.Dt, norm.WarmupSteps, norm.PhysicsRounds)
	}
	if _, err := (Config{}).Normalized(); err == nil {
		t.Fatal("Normalized accepted the zero config")
	}
}
