package core

import (
	"strings"
	"testing"

	"agcm/internal/fault"
	"agcm/internal/grid"
	"agcm/internal/history"
	"agcm/internal/machine"
	"agcm/internal/physics"
)

// keyStabilityGolden pins the ConfigKey of a fixed reference config.  The
// canonical encoding is a persistent cache-address format: any change to the
// field set, field order, defaulting or float formatting silently invalidates
// (or worse, aliases) every stored key, so format drift must be a conscious,
// test-breaking decision.
const keyStabilityGolden = "7ac4aced54bd3d82aca9411ffa2feade5d6f157b1a83e3848f0664b1841e74fb"

func TestConfigKeyStability(t *testing.T) {
	cfg := Config{
		Spec:          grid.TwoByTwoPointFive(9),
		Machine:       machine.Paragon(),
		MeshPy:        4,
		MeshPx:        8,
		Filter:        FilterFFTBalanced,
		PhysicsScheme: physics.Pairwise,
	}
	key, err := cfg.ConfigKey()
	if err != nil {
		t.Fatal(err)
	}
	if key != keyStabilityGolden {
		raw, _ := cfg.CanonicalJSON()
		t.Fatalf("canonical format drifted:\n got key %s\nwant key %s\ncanonical: %s",
			key, keyStabilityGolden, raw)
	}
}

func TestCanonicalRoundTrip(t *testing.T) {
	faultSpec, err := fault.Parse("seed=7;slow:rank=1,at=0.5,factor=3;jitter:max=2e-4")
	if err != nil {
		t.Fatal(err)
	}
	configs := map[string]Config{
		"basic": testConfig(2, 2, FilterFFTBalanced),
		"all-knobs": {
			Spec:              testSpec,
			Machine:           machine.CrayT3D(),
			MeshPy:            2,
			MeshPx:            3,
			Filter:            FilterConvolutionTree,
			PhysicsScheme:     physics.Greedy,
			PhysicsRounds:     3,
			Dt:                120,
			InitWind:          25,
			VerticalDiffusion: 0.1,
			WarmupSteps:       4,
			DegradeRank:       1,
			DegradeFactor:     2.5,
			EventLog:          true,
			CaptureState:      true,
			CheckpointEvery:   2,
			Fault:             faultSpec,
			Topology:          "torus",
			Placement:         "snake",
		},
		"no-warmup": func() Config {
			c := testConfig(1, 2, FilterFFT)
			c.WarmupSteps = -1
			return c
		}(),
	}
	for name, cfg := range configs {
		t.Run(name, func(t *testing.T) {
			raw, err := cfg.CanonicalJSON()
			if err != nil {
				t.Fatal(err)
			}
			back, err := ConfigFromCanonicalJSON(raw)
			if err != nil {
				t.Fatalf("decoding %s: %v", raw, err)
			}
			raw2, err := back.CanonicalJSON()
			if err != nil {
				t.Fatal(err)
			}
			if string(raw) != string(raw2) {
				t.Fatalf("canonical round trip not a fixpoint:\n first %s\nsecond %s", raw, raw2)
			}
			k1, err := cfg.ConfigKey()
			if err != nil {
				t.Fatal(err)
			}
			k2, err := back.ConfigKey()
			if err != nil {
				t.Fatal(err)
			}
			if k1 != k2 {
				t.Fatalf("keys differ across round trip: %s vs %s", k1, k2)
			}
		})
	}
}

// TestCanonicalDefaultedAliases checks that configs differing only in
// defaulted fields canonicalize to the same key — they run the same
// simulation, so they must share a cache entry.
func TestCanonicalDefaultedAliases(t *testing.T) {
	a := testConfig(2, 2, FilterFFTBalanced)
	b := a
	// Spell out explicitly what withDefaults would fill in.
	withDef, err := a.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	b.Dt = withDef.Dt
	b.InitWind = 20
	b.PhysicsRounds = 2
	b.WarmupSteps = 2
	ka, err := a.ConfigKey()
	if err != nil {
		t.Fatal(err)
	}
	kb, err := b.ConfigKey()
	if err != nil {
		t.Fatal(err)
	}
	if ka != kb {
		t.Fatalf("explicitly-defaulted config got a different key: %s vs %s", ka, kb)
	}
	c := a
	c.Dt = withDef.Dt * 2
	kc, err := c.ConfigKey()
	if err != nil {
		t.Fatal(err)
	}
	if kc == ka {
		t.Fatal("different dt must change the key")
	}
}

func TestCanonicalRejectsUnknownFields(t *testing.T) {
	raw := []byte(`{"machine":"Intel Paragon","nlon":36,"nlat":24,"nlayers":3,` +
		`"mesh_py":1,"mesh_px":2,"fliter":"fft"}`)
	if _, err := ConfigFromCanonicalJSON(raw); err == nil ||
		!strings.Contains(err.Error(), "fliter") {
		t.Fatalf("misspelled field not rejected: %v", err)
	}
	if _, err := ConfigFromCanonicalJSON([]byte(`{"machine":"paragon"} {}`)); err == nil {
		t.Fatal("trailing data not rejected")
	}
	if _, err := ConfigFromCanonicalJSON([]byte(`{"nlon":36}`)); err == nil {
		t.Fatal("missing machine not rejected")
	}
}

func TestCanonicalRejectsUnrepresentable(t *testing.T) {
	cfg := testConfig(1, 1, FilterFFT)
	cfg.InitialState = &history.File{Spec: testSpec}
	if _, err := cfg.CanonicalJSON(); err == nil {
		t.Error("in-memory InitialState accepted")
	}
	cfg = testConfig(1, 1, FilterFFT)
	cfg.Machine = machine.Degraded(machine.Paragon(), 2)
	if _, err := cfg.CanonicalJSON(); err == nil {
		t.Error("non-round-tripping machine name accepted")
	}
}

// TestCanonicalFaultRoundTrip checks the fault clause syntax survives the
// canonical encoding (it is embedded as a string).
func TestCanonicalFaultRoundTrip(t *testing.T) {
	cfg := testConfig(2, 2, FilterFFT)
	spec, err := fault.Parse("seed=3;drop:prob=0.01,retries=4,timeout=5e-3")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Fault = spec
	raw, err := cfg.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ConfigFromCanonicalJSON(raw)
	if err != nil {
		t.Fatal(err)
	}
	if back.Fault == nil || back.Fault.String() != spec.String() {
		t.Fatalf("fault spec did not round-trip: %v", back.Fault)
	}
}
