package core

// PredictCost: the analytic job-size oracle for shortest-job-first
// scheduling.  It estimates, without running anything, how many virtual
// machine-seconds a run will consume on its critical path — the same
// "predict, then place" move the paper's load-balancing schemes make, applied
// to whole jobs instead of columns.
//
// The estimate is deliberately coarse: a handful of calibrated per-point
// operation counts pushed through the machine model's linear cost terms.
// A scheduler oracle needs the *ordering* of job costs to be right and
// stable, not the absolute seconds; accuracy within a small factor is
// plenty, and the constants here are pinned by tests only for determinism
// and monotonicity (more steps, more points, slower machine => never
// cheaper).

import (
	"fmt"
	"math"
)

// Calibrated per-gridpoint operation counts for the cost estimate.  The FD
// count matches dynamics.FlopsPerPoint; the physics and filter counts are
// effective averages (physics varies by column and epoch, the filter only
// touches high latitudes) chosen to land the component ratio near the
// paper's single-node breakdown.
const (
	predictFDFlopsPerPoint      = 590
	predictPhysicsFlopsPerPoint = 260
	predictFilterFlopsPerPoint  = 55 // averaged over all latitudes
	predictBytesPerPoint        = 48 // ghost+transpose traffic per point-step
)

// PredictCost estimates the virtual machine-seconds of critical path a run
// of cfg for measuredSteps steps will consume, including the warmup steps
// the server executes before measuring.  It is a pure function of the
// canonicalized config: equal ConfigKeys always predict equal costs.
func PredictCost(cfg Config, measuredSteps int) (float64, error) {
	c, err := cfg.withDefaults()
	if err != nil {
		return 0, err
	}
	if measuredSteps < 1 {
		return 0, fmt.Errorf("core: need at least one measured step")
	}
	steps := float64(measuredSteps + c.WarmupSteps)

	// Critical path follows the largest subdomain: ceil-divide the grid
	// across the mesh.
	rowsMax := math.Ceil(float64(c.Spec.Nlat) / float64(c.MeshPy))
	colsMax := math.Ceil(float64(c.Spec.Nlon) / float64(c.MeshPx))
	points := rowsMax * colsMax * float64(c.Spec.Nlayers)

	flopsPerStep := points * (predictFDFlopsPerPoint + predictPhysicsFlopsPerPoint*float64(c.PhysicsRounds)/2)
	if c.Filter != FilterNone {
		// Transform-style filters pay an extra log factor on the zonal
		// dimension.
		flopsPerStep += points * predictFilterFlopsPerPoint * math.Log2(float64(c.Spec.Nlon))
	}
	compute := c.Machine.FlopSeconds(flopsPerStep)

	// Communication: ghost exchanges with up to four neighbours plus the
	// filter transpose within mesh rows, charged as per-message overheads
	// and per-byte bandwidth on the machine model.
	comm := 0.0
	if c.MeshPy*c.MeshPx > 1 {
		msgs := 8.0 + 2*float64(c.MeshPx-1) + 2*float64(c.MeshPy-1)
		bytes := points * predictBytesPerPoint
		comm = msgs*(c.Machine.SendOverhead+c.Machine.RecvOverhead+c.Machine.Latency) +
			bytes/c.Machine.Bandwidth
	}

	cost := steps * (compute + comm)
	if c.DegradeRank >= 0 {
		// The degraded rank is the critical path.
		cost *= c.DegradeFactor
	}
	return cost, nil
}
