package core

import (
	"context"
	"encoding/json"
	"errors"
	"sync"
	"testing"
	"time"

	"agcm/internal/sim"
)

// fingerprint serializes everything a Report derives from the virtual
// machine.  Floats go through encoding/json's shortest-round-trip formatting,
// which maps distinct float64 bit patterns to distinct strings, so equal
// fingerprints mean bit-identical results.
func fingerprint(t *testing.T, rep *Report) string {
	t.Helper()
	raw, err := json.Marshal(struct {
		Filter, FD, Comm, Dyn, Phys, Total float64
		Msgs, Bytes, Wait, MaxAbsH         float64
		PhysicsLoads, FilterLoads          []float64
		Clocks                             []float64
		Accounts                           map[string][]float64
		MessagesSent, BytesSent            []int64
	}{
		rep.FilterTime, rep.FDTime, rep.CommTime, rep.Dynamics, rep.PhysicsTime, rep.Total,
		rep.MessagesPerStep, rep.BytesPerStep, rep.MaxWaitShare, rep.MaxAbsH,
		rep.PhysicsLoads, rep.FilterLoads,
		rep.Raw.Clocks, rep.Raw.Accounts, rep.Raw.MessagesSent, rep.Raw.BytesSent,
	})
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

// TestConcurrentRunsBitIdentical is the concurrency audit behind the agcmd
// worker pool: many core.Run virtual machines in one process — the same
// config twice, plus different configs stressing shared state such as the
// fft per-size plan registry and the pooled sim transports — must each
// produce exactly the report their config produces when run alone.  Run
// under -race (CI does) this also proves the sharing is synchronized.
func TestConcurrentRunsBitIdentical(t *testing.T) {
	configs := []Config{
		testConfig(2, 2, FilterFFTBalanced),
		testConfig(1, 2, FilterFFT),
		testConfig(2, 1, FilterConvolutionRing),
		testConfig(1, 1, FilterPolarDiffusion),
	}
	const steps = 2

	want := make([]string, len(configs))
	for i, cfg := range configs {
		rep, err := Run(cfg, steps)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = fingerprint(t, rep)
	}

	// Two concurrent machines per config, all in flight at once.
	const dup = 2
	got := make([]string, len(configs)*dup)
	errs := make([]error, len(configs)*dup)
	var wg sync.WaitGroup
	for i := range got {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rep, err := Run(configs[i%len(configs)], steps)
			if err != nil {
				errs[i] = err
				return
			}
			got[i] = fingerprint(t, rep)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("concurrent run %d: %v", i, err)
		}
	}
	for i, g := range got {
		if w := want[i%len(configs)]; g != w {
			t.Errorf("concurrent run %d diverged from its solo run:\n got  %s\n want %s", i, g, w)
		}
	}
}

func TestRunContextPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunContext(ctx, testConfig(1, 2, FilterFFT), 1)
	var ce *sim.CanceledError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *sim.CanceledError", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("errors.Is(err, context.Canceled) = false for %v", err)
	}
}

func TestRunContextDeadline(t *testing.T) {
	// A run far too long for the 1ms budget: the deadline must cut it
	// short with the typed error rather than let it complete.
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	_, err := RunContext(ctx, testConfig(2, 2, FilterFFTBalanced), 100000)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	var ce *sim.CanceledError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *sim.CanceledError", err)
	}
}
