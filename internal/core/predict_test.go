package core

import (
	"testing"

	"agcm/internal/grid"
	"agcm/internal/machine"
)

func predictConfig(nlon, nlat, nlayers, py, px int) Config {
	return Config{
		Spec:    grid.Spec{Nlon: nlon, Nlat: nlat, Nlayers: nlayers},
		Machine: machine.Paragon(),
		MeshPy:  py, MeshPx: px,
		Filter: FilterFFT,
	}
}

func TestPredictCostDeterministic(t *testing.T) {
	cfg := predictConfig(36, 24, 3, 1, 1)
	a, err := PredictCost(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PredictCost(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if a != b || a <= 0 {
		t.Fatalf("PredictCost not deterministic or non-positive: %g vs %g", a, b)
	}
}

func TestPredictCostMonotone(t *testing.T) {
	small := predictConfig(36, 24, 3, 1, 1)
	oneStep, err := PredictCost(small, 1)
	if err != nil {
		t.Fatal(err)
	}
	threeSteps, err := PredictCost(small, 3)
	if err != nil {
		t.Fatal(err)
	}
	if threeSteps <= oneStep {
		t.Fatalf("more steps not costlier: %g vs %g", threeSteps, oneStep)
	}

	big, err := PredictCost(predictConfig(72, 46, 9, 1, 1), 1)
	if err != nil {
		t.Fatal(err)
	}
	if big <= oneStep {
		t.Fatalf("bigger grid not costlier: %g vs %g", big, oneStep)
	}

	// More ranks shrink the per-rank subdomain: the predicted critical
	// path must drop even after communication charges.
	meshed, err := PredictCost(predictConfig(72, 46, 9, 2, 2), 1)
	if err != nil {
		t.Fatal(err)
	}
	if meshed >= big {
		t.Fatalf("2x2 mesh not cheaper than 1x1: %g vs %g", meshed, big)
	}

	slow := predictConfig(36, 24, 3, 1, 1)
	slow.Machine = machine.Degraded(machine.Paragon(), 2)
	// A degraded-machine config has no canonical wire form, but the oracle
	// still orders it correctly for direct callers.
	slowCost, err := PredictCost(slow, 1)
	if err != nil {
		t.Fatal(err)
	}
	if slowCost <= oneStep {
		t.Fatalf("slower machine not costlier: %g vs %g", slowCost, oneStep)
	}
}

func TestPredictCostMatchesCanonicalIdentity(t *testing.T) {
	// Configs that canonicalize identically must predict identically: the
	// oracle is a function of the ConfigKey.
	a := predictConfig(36, 24, 3, 1, 1)
	b := a
	b.Dt = 0 // both default the same way
	ca, err := PredictCost(a, 2)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := PredictCost(b, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ca != cb {
		t.Fatalf("canonically equal configs predict differently: %g vs %g", ca, cb)
	}
}

func TestPredictCostRejectsBadInput(t *testing.T) {
	if _, err := PredictCost(Config{}, 1); err == nil {
		t.Fatal("invalid config accepted")
	}
	if _, err := PredictCost(predictConfig(36, 24, 3, 1, 1), 0); err == nil {
		t.Fatal("zero steps accepted")
	}
}
