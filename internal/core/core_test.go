package core

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"agcm/internal/fault"
	"agcm/internal/grid"
	"agcm/internal/history"
	"agcm/internal/machine"
	"agcm/internal/physics"
	"agcm/internal/sim"
)

// testSpec keeps the core tests fast; the full 2x2.5 resolution is
// exercised by the benchmark harness.
var testSpec = grid.Spec{Nlon: 36, Nlat: 24, Nlayers: 3}

func testConfig(py, px int, fv FilterVariant) Config {
	return Config{
		Spec:    testSpec,
		Machine: machine.Paragon(),
		MeshPy:  py, MeshPx: px,
		Filter:        fv,
		PhysicsScheme: physics.None,
	}
}

func TestRunProducesConsistentReport(t *testing.T) {
	rep, err := Run(testConfig(2, 2, FilterFFTBalanced), 3)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ranks != 4 || rep.Steps != 3 {
		t.Fatalf("report metadata %+v", rep)
	}
	if rep.StepsPerDay < 10 {
		t.Fatalf("StepsPerDay = %d", rep.StepsPerDay)
	}
	if rep.FilterTime <= 0 || rep.FDTime <= 0 || rep.PhysicsTime <= 0 {
		t.Fatalf("component times not positive: %+v", rep)
	}
	if rep.Dynamics < rep.FilterTime || rep.Dynamics < rep.FDTime {
		t.Fatalf("Dynamics %g below its components (filter %g, fd %g)",
			rep.Dynamics, rep.FilterTime, rep.FDTime)
	}
	if rep.Total < rep.Dynamics {
		t.Fatalf("Total %g below Dynamics %g", rep.Total, rep.Dynamics)
	}
	if len(rep.PhysicsLoads) != 4 || len(rep.FilterLoads) != 4 {
		t.Fatalf("per-rank loads missing")
	}
	// The model must have stayed numerically stable.
	if rep.MaxAbsH > 10*8000 || math.IsNaN(rep.MaxAbsH) || rep.MaxAbsH == 0 {
		t.Fatalf("MaxAbsH = %g", rep.MaxAbsH)
	}
}

func TestRunValidation(t *testing.T) {
	bad := testConfig(2, 2, FilterFFT)
	bad.Machine = nil
	if _, err := Run(bad, 2); err == nil {
		t.Error("nil machine accepted")
	}
	bad = testConfig(0, 2, FilterFFT)
	if _, err := Run(bad, 2); err == nil {
		t.Error("zero mesh accepted")
	}
	if _, err := Run(testConfig(1, 1, FilterFFT), 0); err == nil {
		t.Error("zero steps accepted")
	}
	bad = testConfig(1, 1, FilterVariant(99))
	if _, err := Run(bad, 1); err == nil {
		t.Error("unknown filter variant accepted")
	}
	bad = testConfig(1, 1, FilterFFT)
	bad.Spec = grid.Spec{}
	if _, err := Run(bad, 1); err == nil {
		t.Error("invalid spec accepted")
	}
}

func TestFilterVariantStrings(t *testing.T) {
	want := map[FilterVariant]string{
		FilterConvolutionRing: "convolution-ring",
		FilterConvolutionTree: "convolution-tree",
		FilterFFT:             "fft",
		FilterFFTBalanced:     "fft-load-balanced",
		FilterNone:            "none",
		FilterPolarDiffusion:  "polar-implicit-diffusion",
		FilterFFTRowwise:      "fft-rowwise",
	}
	for v, s := range want {
		if v.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(v), v.String(), s)
		}
	}
}

func TestStepsPerDayDerivedFromCFL(t *testing.T) {
	cfg := testConfig(1, 1, FilterFFT)
	spd := cfg.StepsPerDay()
	if spd < 20 || spd > 5000 {
		t.Fatalf("StepsPerDay = %d implausible", spd)
	}
	cfg.Dt = 86400 / 10
	if got := cfg.StepsPerDay(); got != 10 {
		t.Fatalf("explicit dt gives %d steps/day, want 10", got)
	}
}

func TestImbalanceHelper(t *testing.T) {
	if got := Imbalance([]float64{11, 4.9, 8, 8}); math.Abs(got-(11-7.975)/7.975) > 1e-12 {
		t.Fatalf("Imbalance = %g", got)
	}
	if Imbalance(nil) != 0 || Imbalance([]float64{0, 0}) != 0 {
		t.Fatalf("edge cases wrong")
	}
}

func TestNewFilterBeatsOldAtScale(t *testing.T) {
	// The paper's headline: with the load-balanced FFT filter the whole
	// code is roughly twice as fast on many nodes (Tables 4 vs 5).
	old, err := Run(testConfig(4, 4, FilterConvolutionRing), 3)
	if err != nil {
		t.Fatal(err)
	}
	new_, err := Run(testConfig(4, 4, FilterFFTBalanced), 3)
	if err != nil {
		t.Fatal(err)
	}
	if new_.Total >= old.Total {
		t.Fatalf("new filter total %g not below old %g", new_.Total, old.Total)
	}
	if new_.FilterTime >= old.FilterTime {
		t.Fatalf("new filter time %g not below old %g", new_.FilterTime, old.FilterTime)
	}
}

func TestPhysicsBalancingReducesPhysicsTime(t *testing.T) {
	base := testConfig(4, 2, FilterFFTBalanced)
	balanced := base
	balanced.PhysicsScheme = physics.Pairwise
	balanced.PhysicsRounds = 2
	repN, err := Run(base, 4)
	if err != nil {
		t.Fatal(err)
	}
	repB, err := Run(balanced, 4)
	if err != nil {
		t.Fatal(err)
	}
	if repB.PhysicsTime >= repN.PhysicsTime {
		t.Fatalf("balanced physics %g not below unbalanced %g",
			repB.PhysicsTime, repN.PhysicsTime)
	}
}

func TestRunDeterministic(t *testing.T) {
	a, err := Run(testConfig(2, 3, FilterFFTBalanced), 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(testConfig(2, 3, FilterFFTBalanced), 3)
	if err != nil {
		t.Fatal(err)
	}
	if a.Total != b.Total || a.FilterTime != b.FilterTime || a.PhysicsTime != b.PhysicsTime {
		t.Fatalf("reports differ across identical runs:\n%+v\n%+v", a, b)
	}
}

func TestAllFilterVariantsRunAndStayStable(t *testing.T) {
	for _, fv := range []FilterVariant{
		FilterConvolutionRing, FilterConvolutionTree, FilterFFT,
		FilterFFTBalanced, FilterFFTRowwise, FilterPolarDiffusion,
	} {
		rep, err := Run(testConfig(2, 2, fv), 2)
		if err != nil {
			t.Fatalf("%s: %v", fv, err)
		}
		if rep.MaxAbsH > 10000 || rep.MaxAbsH < 500 {
			t.Errorf("%s: max |h| = %g", fv, rep.MaxAbsH)
		}
		if fv != FilterPolarDiffusion && rep.FilterTime <= 0 {
			t.Errorf("%s: no filter time accounted", fv)
		}
	}
}

func TestDegradedRankValidation(t *testing.T) {
	cfg := testConfig(2, 2, FilterFFT)
	cfg.DegradeRank = 9 // outside the 4-rank mesh
	cfg.DegradeFactor = 2
	if _, err := Run(cfg, 1); err == nil {
		t.Error("out-of-mesh degraded rank accepted")
	}
	cfg = testConfig(2, 2, FilterFFT)
	cfg.DegradeRank = 1
	cfg.DegradeFactor = 0.5
	if _, err := Run(cfg, 1); err == nil {
		t.Error("degrade factor below 1 accepted")
	}
	cfg = testConfig(2, 2, FilterFFT)
	cfg.DegradeRank = 1
	cfg.DegradeFactor = 2
	rep, err := Run(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	// The degraded rank must dominate the per-rank physics loads.
	maxIdx := 0
	for r, v := range rep.PhysicsLoads {
		if v > rep.PhysicsLoads[maxIdx] {
			maxIdx = r
		}
	}
	if maxIdx != 1 {
		t.Errorf("slowest physics rank is %d, want the degraded rank 1", maxIdx)
	}
}

func TestCheckpointContinuation(t *testing.T) {
	// 6 measured steps straight through vs 3 + checkpoint + 3: the final
	// state must be identical (physics balancing estimates reset at the
	// restart, so use the None scheme for bitwise comparability).
	base := testConfig(2, 2, FilterFFTBalanced)
	base.CaptureState = true
	base.WarmupSteps = 1

	straight, err := Run(base, 6)
	if err != nil {
		t.Fatal(err)
	}
	first, err := Run(base, 3)
	if err != nil {
		t.Fatal(err)
	}
	cont := base
	cont.InitialState = first.FinalState
	cont.WarmupSteps = 1 // warmup steps also advance the state
	second, err := Run(cont, 2)
	if err != nil {
		t.Fatal(err)
	}
	// straight ran warmup(1)+6 = 7 steps; first 1+3 = 4; second 1+2 = 3
	// more on top -> 7 total.
	hA, _ := straight.FinalState.Variable("h")
	hB, _ := second.FinalState.Variable("h")
	for i := range hA {
		if hA[i] != hB[i] {
			t.Fatalf("checkpoint continuation diverged at %d: %g vs %g", i, hA[i], hB[i])
		}
	}
	if second.FinalState.Step != straight.FinalState.Step {
		t.Fatalf("step counters differ: %d vs %d",
			second.FinalState.Step, straight.FinalState.Step)
	}
}

func TestFullDaySoak(t *testing.T) {
	// A full simulated day at full resolution with live physics and
	// balancing: the model must stay bounded and conservative.
	if testing.Short() {
		t.Skip("long soak run")
	}
	cfg := Config{
		Spec:    grid.TwoByTwoPointFive(9),
		Machine: machine.CrayT3D(),
		MeshPy:  2, MeshPx: 2,
		Filter:            FilterFFTBalanced,
		PhysicsScheme:     physics.Pairwise,
		PhysicsRounds:     2,
		VerticalDiffusion: 0.1,
	}
	steps := cfg.StepsPerDay()
	rep, err := Run(cfg, steps)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MaxAbsH > 2*2500 || rep.MaxAbsH < 1000 {
		t.Fatalf("after one simulated day max |h| = %g m", rep.MaxAbsH)
	}
}

func TestSnapshotHistoryRoundTrip(t *testing.T) {
	cfg := testConfig(1, 1, FilterFFTBalanced)
	file, err := Snapshot(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(file.Names) != 5 {
		t.Fatalf("snapshot has %d variables", len(file.Names))
	}
	var buf bytes.Buffer
	if err := history.Write(&buf, file, history.BigEndian); err != nil {
		t.Fatal(err)
	}
	got, err := history.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	h0, _ := file.Variable("h")
	h1, _ := got.Variable("h")
	for i := range h0 {
		if h0[i] != h1[i] {
			t.Fatalf("history round trip differs at %d", i)
		}
	}
	// The snapshot must hold a physically sensible height field.
	for _, v := range h1 {
		if v < 1000 || v > 20000 {
			t.Fatalf("snapshot h = %g outside plausible range", v)
		}
	}
}

func TestCrashRecoveryRoundTrip(t *testing.T) {
	// The end-to-end robustness scenario at test resolution: reference run,
	// crashed run with periodic checkpoints, restart from the last
	// checkpoint — the restarted state must be bit-identical to the
	// reference.
	base := testConfig(2, 2, FilterFFTBalanced)
	base.WarmupSteps = -1 // all legs must agree on absolute step indices
	base.CaptureState = true
	const steps = 6

	ref, err := Run(base, steps)
	if err != nil {
		t.Fatal(err)
	}

	faulty := base
	faulty.CheckpointEvery = 2
	faulty.Fault = &fault.Spec{
		Crashes: []fault.Crash{{Rank: 1, At: 0.7 * ref.Raw.MaxClock()}},
	}
	crashed, err := Run(faulty, steps)
	var ce *sim.CrashError
	if !errors.As(err, &ce) {
		t.Fatalf("crashed run error = %v, want *sim.CrashError", err)
	}
	if ce.Rank != 1 {
		t.Fatalf("crash rank = %d, want 1", ce.Rank)
	}
	if crashed == nil {
		t.Fatal("failed run returned no partial report")
	}
	cps := crashed.Checkpoints
	for len(cps) > 0 && cps[len(cps)-1].Step >= steps {
		cps = cps[:len(cps)-1]
	}
	if len(cps) == 0 {
		t.Fatal("no usable checkpoint survived the crash")
	}
	last := cps[len(cps)-1]

	resume := base
	resume.InitialState = last
	rec, err := Run(resume, steps-last.Step)
	if err != nil {
		t.Fatal(err)
	}
	if rec.FinalState.Step != ref.FinalState.Step {
		t.Fatalf("restarted run ended at step %d, reference at %d",
			rec.FinalState.Step, ref.FinalState.Step)
	}
	for i, name := range ref.FinalState.Names {
		a := ref.FinalState.Data[i]
		b, err := rec.FinalState.Variable(name)
		if err != nil {
			t.Fatalf("restarted state missing %q: %v", name, err)
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("variable %q diverged at %d: %g vs %g", name, j, a[j], b[j])
			}
		}
	}
}

func TestCheckpointEveryHealthyRun(t *testing.T) {
	cfg := testConfig(2, 2, FilterFFT)
	cfg.WarmupSteps = -1
	cfg.CheckpointEvery = 2
	rep, err := Run(cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Checkpoints) != 2 {
		t.Fatalf("got %d checkpoints, want 2 (steps 2 and 4)", len(rep.Checkpoints))
	}
	for i, want := range []int{2, 4} {
		if rep.Checkpoints[i].Step != want {
			t.Fatalf("checkpoint %d at step %d, want %d", i, rep.Checkpoints[i].Step, want)
		}
	}
}

func TestFaultSpecValidatedAgainstMesh(t *testing.T) {
	cfg := testConfig(2, 2, FilterFFT)
	cfg.Fault = &fault.Spec{Crashes: []fault.Crash{{Rank: 7, At: 1}}}
	if _, err := Run(cfg, 2); err == nil {
		t.Fatal("fault naming rank 7 accepted on a 4-rank mesh")
	}
	cfg.Fault = &fault.Spec{Slowdowns: []fault.Slowdown{{Rank: 0, At: 0, Factor: 0.5}}}
	if _, err := Run(cfg, 2); err == nil {
		t.Fatal("invalid slowdown factor accepted")
	}
}

func TestSlowdownFaultStretchesRun(t *testing.T) {
	cfg := testConfig(2, 2, FilterFFT)
	healthy, err := Run(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	slow := cfg
	slow.Fault = &fault.Spec{
		Slowdowns: []fault.Slowdown{{Rank: 0, At: 0, Factor: 3}},
	}
	degraded, err := Run(slow, 3)
	if err != nil {
		t.Fatal(err)
	}
	if degraded.Total <= healthy.Total {
		t.Fatalf("slowdown did not stretch the run: %g vs healthy %g",
			degraded.Total, healthy.Total)
	}
}
