package server

import (
	"context"
	"sync"
	"time"

	"agcm/internal/core"
)

// Priority is a request's admission class.  Within a class the queue is
// FIFO; across classes higher priority always pops first.  Priority affects
// only scheduling order, never results — the same config produces the same
// bytes at any priority.
type Priority int

const (
	// High jumps the normal traffic: interactive sweeps, operator probes.
	High Priority = iota
	// Normal is the default class.
	Normal
	// Low is for bulk campaign traffic that should yield to everyone else.
	Low
	numPriorities
)

// String returns the class name used in requests and metrics.
func (p Priority) String() string {
	switch p {
	case High:
		return "high"
	case Normal:
		return "normal"
	case Low:
		return "low"
	}
	return "invalid"
}

// PriorityByName parses a request's priority field; the empty string is
// Normal.
func PriorityByName(name string) (Priority, bool) {
	switch name {
	case "":
		return Normal, true
	case "high":
		return High, true
	case "normal":
		return Normal, true
	case "low":
		return Low, true
	}
	return 0, false
}

// Job is one admitted simulation request on its way through the worker pool.
type Job struct {
	// Key is the result-cache address: ConfigKey plus the step count.
	Key string
	// Config is the decoded, validated simulation config and Canonical its
	// canonical encoding (echoed in the response body).
	Config    core.Config
	Canonical []byte
	// Steps is the number of measured steps to integrate.
	Steps int
	// Timeout bounds the run's execution once a worker picks it up; the
	// worker threads it into core.RunContext as a context deadline.
	Timeout time.Duration
	// Priority is the admission class the job was queued under.
	Priority Priority
	// Class is the job's SLO class; class-aware schedulers order by it and
	// the per-class metrics are labeled with it.
	Class SLOClass
	// Cost is the machine cost model's predicted run time
	// (core.PredictCost) — the sjf scheduler's oracle.
	Cost float64
	// Seq is the admission sequence number; every scheduler uses it as the
	// final tie-break, so scheduling is deterministic for a fixed arrival
	// order.
	Seq uint64

	flight *flight
	// enqueued is when the job entered the scheduler; the worker derives
	// queue-wait time (and the fairness metric's slowdown) from it.
	enqueued time.Time
}

// queue is the bounded FIFO+priority admission queue in front of the worker
// pool — the "fcfs" Scheduler, and the default.  Push never blocks: when
// the queue is full the request is shed at the door (the HTTP layer turns
// that into 429 + Retry-After), which keeps queueing delay bounded instead
// of letting latency grow without limit.
type queue struct {
	mu      sync.Mutex
	cond    *sync.Cond
	cap     int
	classes [numPriorities][]*Job
	heads   [numPriorities]int
	depth   int
	closed  bool
}

func newQueue(capacity int) *queue {
	q := &queue{cap: capacity}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// Name implements Scheduler.
func (q *queue) Name() string { return "fcfs" }

// Push admits a job, or reports false when the queue is full or closed.
func (q *queue) Push(j *Job) bool {
	q.mu.Lock()
	if q.closed || q.depth >= q.cap {
		q.mu.Unlock()
		return false
	}
	q.classes[j.Priority] = append(q.classes[j.Priority], j)
	q.depth++
	q.mu.Unlock()
	q.cond.Signal()
	return true
}

// Pop blocks for the next job — highest class first, FIFO within a class —
// and reports false once the queue is closed and drained.
func (q *queue) Pop() (*Job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		for c := 0; c < int(numPriorities); c++ {
			if q.heads[c] < len(q.classes[c]) {
				j := q.classes[c][q.heads[c]]
				q.classes[c][q.heads[c]] = nil
				q.heads[c]++
				if q.heads[c] == len(q.classes[c]) {
					q.classes[c] = q.classes[c][:0]
					q.heads[c] = 0
				}
				q.depth--
				return j, true
			}
		}
		if q.closed {
			return nil, false
		}
		q.cond.Wait()
	}
}

// Close stops admission; Pop keeps draining what was already accepted.
func (q *queue) Close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}

// Depth returns the number of queued (not yet running) jobs.
func (q *queue) Depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.depth
}

// Runner executes one simulation; the production runner is core.RunContext,
// tests substitute counters and blockers.
type Runner func(ctx context.Context, cfg core.Config, steps int) (*core.Report, error)
