package server

import (
	"container/list"
	"sync"
)

// cache is the sharded in-memory LRU result cache.  Keys are content
// addresses (core.Config.ConfigKey plus the step count) and values are the
// finished, byte-exact HTTP response bodies, so a hit is a map lookup and a
// write — the simulation itself is never re-run.  Sharding by key keeps
// lock contention flat as the worker pool and request fan-in grow.
type cache struct {
	shards []cacheShard
}

type cacheShard struct {
	mu       sync.Mutex
	capacity int
	entries  map[string]*list.Element
	order    *list.List // front = most recently used
	evicted  uint64
}

type cacheEntry struct {
	key  string
	body []byte
}

const cacheShards = 16

// newCache builds a cache holding up to capacity entries across a fixed
// shard count (each shard gets an equal slice, minimum one entry).
func newCache(capacity int) *cache {
	per := capacity / cacheShards
	if per < 1 {
		per = 1
	}
	c := &cache{shards: make([]cacheShard, cacheShards)}
	for i := range c.shards {
		c.shards[i] = cacheShard{
			capacity: per,
			entries:  make(map[string]*list.Element),
			order:    list.New(),
		}
	}
	return c
}

// shardFor maps a key to its shard by FNV-1a.
func (c *cache) shardFor(key string) *cacheShard {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return &c.shards[h%uint32(len(c.shards))]
}

// Get returns the cached body for key, refreshing its recency.
func (c *cache) Get(key string) ([]byte, bool) {
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.entries[key]
	if !ok {
		return nil, false
	}
	s.order.MoveToFront(el)
	return el.Value.(*cacheEntry).body, true
}

// Put stores body under key, evicting the least recently used entry of the
// shard when at capacity.  Bodies are immutable once stored.
func (c *cache) Put(key string, body []byte) {
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.entries[key]; ok {
		s.order.MoveToFront(el)
		el.Value.(*cacheEntry).body = body
		return
	}
	for s.order.Len() >= s.capacity {
		last := s.order.Back()
		s.order.Remove(last)
		delete(s.entries, last.Value.(*cacheEntry).key)
		s.evicted++
	}
	s.entries[key] = s.order.PushFront(&cacheEntry{key: key, body: body})
}

// Len returns the entry count, summed over shards in index order.
func (c *cache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.order.Len()
		s.mu.Unlock()
	}
	return n
}

// Evictions returns the total LRU evictions, summed over shards in index
// order.
func (c *cache) Evictions() uint64 {
	var n uint64
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.evicted
		s.mu.Unlock()
	}
	return n
}
