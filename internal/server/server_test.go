package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"agcm/internal/core"
)

// mustNew builds a Server, failing the test on error (only opening the
// disk tier can fail).
func mustNew(t *testing.T, opt Options) *Server {
	t.Helper()
	s, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// reqJSON builds a /v1/run body for a small test simulation.
func reqJSON(mesh [2]int, filter string, steps int) string {
	return fmt.Sprintf(`{"config":{"nlon":36,"nlat":24,"nlayers":3,"machine":"paragon",`+
		`"mesh_py":%d,"mesh_px":%d,"filter":%q},"steps":%d}`,
		mesh[0], mesh[1], filter, steps)
}

func postRun(t *testing.T, url, body string) (int, http.Header, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/v1/run", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, raw
}

// stubReport fabricates a deterministic report from the config, for tests
// that control the runner.
func stubReport(cfg core.Config, steps int) *core.Report {
	return &core.Report{
		Ranks:       cfg.MeshPy * cfg.MeshPx,
		Steps:       steps,
		StepsPerDay: 100,
		Total:       float64(steps),
	}
}

// TestDeterministicResponsesAcrossInstances is the serving determinism
// proof: two independent daemon instances, each given the same 200-request
// mix in a different shuffled order with concurrent clients, must produce
// byte-identical response bodies for every request.
func TestDeterministicResponsesAcrossInstances(t *testing.T) {
	if testing.Short() {
		t.Skip("runs ~24 real simulations")
	}
	// 12 distinct configs; 200 requests heavy with duplicates.
	var distinct []string
	for _, mesh := range [][2]int{{1, 1}, {1, 2}, {2, 1}, {2, 2}} {
		for _, filter := range []string{"fft", "fft-load-balanced", "convolution-ring"} {
			distinct = append(distinct, reqJSON(mesh, filter, 1))
		}
	}
	const total = 200
	mix := make([]int, total)
	for i := range mix {
		mix[i] = i % len(distinct)
	}

	run := func(seed int64) map[int][]byte {
		s := mustNew(t, Options{Workers: 4, QueueCapacity: total})
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		defer s.Drain(context.Background())

		order := append([]int(nil), mix...)
		rand.New(rand.NewSource(seed)).Shuffle(len(order), func(i, j int) {
			order[i], order[j] = order[j], order[i]
		})
		bodies := make(map[int][]byte) // distinct-config index -> body
		var mu sync.Mutex
		var wg sync.WaitGroup
		sem := make(chan struct{}, 16)
		for _, which := range order {
			wg.Add(1)
			go func(which int) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				status, _, body := postRun(t, ts.URL, distinct[which])
				if status != http.StatusOK {
					t.Errorf("config %d: status %d: %s", which, status, body)
					return
				}
				mu.Lock()
				defer mu.Unlock()
				if prev, ok := bodies[which]; ok {
					if !bytes.Equal(prev, body) {
						t.Errorf("config %d: two responses differ within one instance", which)
					}
					return
				}
				bodies[which] = body
			}(which)
		}
		wg.Wait()
		return bodies
	}

	a := run(1)
	b := run(2)
	for which := range distinct {
		ba, bb := a[which], b[which]
		if len(ba) == 0 || len(bb) == 0 {
			t.Fatalf("config %d missing a response", which)
		}
		if !bytes.Equal(ba, bb) {
			t.Errorf("config %d: bodies differ across instances:\n a: %s\n b: %s", which, ba, bb)
		}
	}
}

// TestCacheHitIdenticalBytesWithoutRerun: a repeated config must come back
// from the cache — identical bytes, no second simulation.
func TestCacheHitIdenticalBytesWithoutRerun(t *testing.T) {
	s := mustNew(t, Options{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Drain(context.Background())

	body := reqJSON([2]int{1, 2}, "fft", 1)
	st1, h1, b1 := postRun(t, ts.URL, body)
	st2, h2, b2 := postRun(t, ts.URL, body)
	if st1 != 200 || st2 != 200 {
		t.Fatalf("statuses %d, %d: %s %s", st1, st2, b1, b2)
	}
	if got := h1.Get("X-Agcmd-Cache"); got != "miss" {
		t.Errorf("first request disposition %q, want miss", got)
	}
	if got := h2.Get("X-Agcmd-Cache"); got != "hit" {
		t.Errorf("second request disposition %q, want hit", got)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("cache hit bytes differ:\n %s\n %s", b1, b2)
	}
	if runs := s.Runs(); runs != 1 {
		t.Fatalf("Runs() = %d, want 1 (hit must not re-run)", runs)
	}
}

// TestSingleFlightCoalesces: concurrent identical requests share one run.
func TestSingleFlightCoalesces(t *testing.T) {
	release := make(chan struct{})
	s := mustNew(t, Options{
		Workers:       4,
		QueueCapacity: 16,
		Runner: func(ctx context.Context, cfg core.Config, steps int) (*core.Report, error) {
			<-release
			return stubReport(cfg, steps), nil
		},
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Drain(context.Background())

	const clients = 8
	body := reqJSON([2]int{2, 2}, "fft", 3)
	results := make(chan []byte, clients)
	for i := 0; i < clients; i++ {
		go func() {
			status, _, b := postRun(t, ts.URL, body)
			if status != 200 {
				t.Errorf("status %d: %s", status, b)
			}
			results <- b
		}()
	}
	// Wait until every client is registered on the flight, then let the
	// single run finish.
	deadline := time.Now().Add(5 * time.Second)
	for s.metrics.Request("miss")+s.metrics.Request("coalesced") < clients {
		if time.Now().After(deadline) {
			t.Fatal("clients did not all register in time")
		}
		time.Sleep(time.Millisecond)
	}
	close(release)

	var first []byte
	for i := 0; i < clients; i++ {
		b := <-results
		if first == nil {
			first = b
		} else if !bytes.Equal(first, b) {
			t.Errorf("coalesced responses differ")
		}
	}
	if runs := s.Runs(); runs != 1 {
		t.Errorf("Runs() = %d, want 1", runs)
	}
	if miss, co := s.metrics.Request("miss"), s.metrics.Request("coalesced"); miss != 1 || co != clients-1 {
		t.Errorf("miss = %d, coalesced = %d; want 1, %d", miss, co, clients-1)
	}
}

// TestLoadShedding: with one worker and a one-slot queue, a third distinct
// request must be shed with 429 and a Retry-After hint.
func TestLoadShedding(t *testing.T) {
	release := make(chan struct{})
	s := mustNew(t, Options{
		Workers:       1,
		QueueCapacity: 1,
		Runner: func(ctx context.Context, cfg core.Config, steps int) (*core.Report, error) {
			<-release
			return stubReport(cfg, steps), nil
		},
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Drain(context.Background())

	done := make(chan struct{}, 2)
	for i, body := range []string{
		reqJSON([2]int{1, 1}, "fft", 1),
		reqJSON([2]int{1, 2}, "fft", 1),
	} {
		go func(i int, body string) {
			status, _, b := postRun(t, ts.URL, body)
			if status != 200 {
				t.Errorf("request %d: status %d: %s", i, status, b)
			}
			done <- struct{}{}
		}(i, body)
	}
	// Wait until one job is running and one is queued.
	deadline := time.Now().Add(5 * time.Second)
	for !(s.inflight.Load() == 1 && s.queue.Depth() == 1) {
		if time.Now().After(deadline) {
			t.Fatalf("backlog never formed: inflight=%d depth=%d", s.inflight.Load(), s.queue.Depth())
		}
		time.Sleep(time.Millisecond)
	}
	status, header, body := postRun(t, ts.URL, reqJSON([2]int{2, 1}, "fft", 1))
	if status != http.StatusTooManyRequests {
		t.Fatalf("third request status %d, want 429: %s", status, body)
	}
	ra, err := strconv.Atoi(header.Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Fatalf("Retry-After = %q, want integer >= 1", header.Get("Retry-After"))
	}
	if shed := s.metrics.Request("shed"); shed != 1 {
		t.Errorf("shed counter = %d, want 1", shed)
	}
	close(release)
	<-done
	<-done
}

// getStatus fetches a path and returns the status code.
func getStatus(t *testing.T, url string) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

// TestDrain: SIGTERM semantics — accepted jobs (running and queued) finish
// and are answered, new requests are refused, Drain returns once idle.
// It also pins the drain sequence the gateway depends on: liveness
// (/healthz) stays 200 throughout while readiness (/readyz) flips to 503
// the moment draining begins, before accepted jobs have finished.
func TestDrain(t *testing.T) {
	release := make(chan struct{})
	s := mustNew(t, Options{
		Workers:       1,
		QueueCapacity: 4,
		Runner: func(ctx context.Context, cfg core.Config, steps int) (*core.Report, error) {
			<-release
			return stubReport(cfg, steps), nil
		},
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	accepted := make(chan int, 2)
	for _, body := range []string{
		reqJSON([2]int{1, 1}, "fft", 1), // runs immediately
		reqJSON([2]int{1, 2}, "fft", 1), // waits in queue across the drain
	} {
		go func(body string) {
			status, _, _ := postRun(t, ts.URL, body)
			accepted <- status
		}(body)
	}
	deadline := time.Now().Add(5 * time.Second)
	for !(s.inflight.Load() == 1 && s.queue.Depth() == 1) {
		if time.Now().After(deadline) {
			t.Fatal("backlog never formed")
		}
		time.Sleep(time.Millisecond)
	}

	// Before draining: live and ready.
	if st := getStatus(t, ts.URL+"/healthz"); st != http.StatusOK {
		t.Fatalf("healthz before drain: %d, want 200", st)
	}
	if st := getStatus(t, ts.URL+"/readyz"); st != http.StatusOK {
		t.Fatalf("readyz before drain: %d, want 200", st)
	}

	drained := make(chan error, 1)
	go func() { drained <- s.Drain(context.Background()) }()
	// Drain must flip the door immediately, while jobs are still pending.
	for s.draining.Load() == false {
		time.Sleep(time.Millisecond)
	}
	status, _, _ := postRun(t, ts.URL, reqJSON([2]int{2, 2}, "fft", 1))
	if status != http.StatusServiceUnavailable {
		t.Fatalf("request during drain: status %d, want 503", status)
	}
	// While accepted jobs are still pending the process is alive (liveness
	// 200) but must already advertise not-ready (readiness 503), so the
	// gateway stops routing here before the drain completes.
	if st := getStatus(t, ts.URL+"/healthz"); st != http.StatusOK {
		t.Fatalf("healthz during drain: %d, want 200 (liveness is not readiness)", st)
	}
	if st := getStatus(t, ts.URL+"/readyz"); st != http.StatusServiceUnavailable {
		t.Fatalf("readyz during drain: %d, want 503", st)
	}

	close(release) // let the accepted jobs finish
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	for i := 0; i < 2; i++ {
		if status := <-accepted; status != 200 {
			t.Errorf("accepted job answered %d, want 200", status)
		}
	}
}

// TestDrainTimeout: a drain that cannot finish reports the context error.
func TestDrainTimeout(t *testing.T) {
	release := make(chan struct{})
	s := mustNew(t, Options{
		Workers: 1,
		Runner: func(ctx context.Context, cfg core.Config, steps int) (*core.Report, error) {
			<-release
			return stubReport(cfg, steps), nil
		},
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	// Unblock the worker before ts.Close (LIFO) so the outstanding client
	// request can finish and Close does not hang.
	defer close(release)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/run", "application/json",
			strings.NewReader(reqJSON([2]int{1, 1}, "fft", 1)))
		if err == nil {
			resp.Body.Close()
		}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for s.inflight.Load() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); err == nil {
		t.Fatal("drain of a stuck worker returned nil")
	}
}

// parseMetrics reads the Prometheus text format into name{labels} -> value.
func parseMetrics(t *testing.T, raw string) map[string]float64 {
	t.Helper()
	out := make(map[string]float64)
	for _, line := range strings.Split(raw, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("unparseable metrics line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("unparseable metrics value in %q", line)
		}
		out[line[:i]] = v
	}
	return out
}

// TestMetricsReconcile drives a known request mix and checks /metrics
// agrees with the client-side tallies exactly.
func TestMetricsReconcile(t *testing.T) {
	gate := make(chan struct{}, 1024)
	blocking := false
	var mu sync.Mutex
	s := mustNew(t, Options{
		Workers:       1,
		QueueCapacity: 1,
		Runner: func(ctx context.Context, cfg core.Config, steps int) (*core.Report, error) {
			mu.Lock()
			b := blocking
			mu.Unlock()
			if b {
				<-gate
			}
			return stubReport(cfg, steps), nil
		},
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Drain(context.Background())

	meshes := [][2]int{{1, 1}, {1, 2}, {2, 1}}
	// Phase 1: three distinct configs, sequential -> 3 misses, 3 runs.
	for _, m := range meshes {
		if st, _, b := postRun(t, ts.URL, reqJSON(m, "fft", 1)); st != 200 {
			t.Fatalf("miss phase: %d %s", st, b)
		}
	}
	// Phase 2: the same three again -> 3 hits.
	for _, m := range meshes {
		if st, _, b := postRun(t, ts.URL, reqJSON(m, "fft", 1)); st != 200 {
			t.Fatalf("hit phase: %d %s", st, b)
		}
	}
	// Phase 3: four concurrent identical new requests -> 1 miss + 3
	// coalesced, one more run.
	mu.Lock()
	blocking = true
	mu.Unlock()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if st, _, b := postRun(t, ts.URL, reqJSON([2]int{2, 2}, "fft", 1)); st != 200 {
				t.Errorf("coalesce phase: %d %s", st, b)
			}
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.metrics.Request("miss")+s.metrics.Request("coalesced") < 4+3 {
		if time.Now().After(deadline) {
			t.Fatal("coalesce phase never registered")
		}
		time.Sleep(time.Millisecond)
	}
	// Phase 4: with the worker blocked, a distinct request fills the queue
	// slot (issued in the background — it only completes once the gate
	// opens) and one more is shed.
	queued := make(chan struct{})
	go func() {
		postRun(t, ts.URL, reqJSON([2]int{1, 3}, "fft", 1))
		close(queued)
	}()
	for s.queue.Depth() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("queue slot never filled")
		}
		time.Sleep(time.Millisecond)
	}
	st, _, _ := postRun(t, ts.URL, reqJSON([2]int{3, 2}, "fft", 1))
	if st != http.StatusTooManyRequests {
		t.Fatalf("shed phase: status %d, want 429", st)
	}
	// Release everything and let it settle.
	for i := 0; i < 16; i++ {
		gate <- struct{}{}
	}
	wg.Wait()
	<-queued

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	m := parseMetrics(t, string(raw))

	want := map[string]float64{
		`agcmd_requests_total{result="hit"}`:       3,
		`agcmd_requests_total{result="miss"}`:      5, // 3 + coalesce leader + queued
		`agcmd_requests_total{result="coalesced"}`: 3,
		`agcmd_requests_total{result="shed"}`:      1,
		`agcmd_runs_total`:                         5, // == misses: every miss ran exactly once
		`agcmd_run_errors_total`:                   0,
		`agcmd_queue_depth`:                        0,
		`agcmd_inflight_jobs`:                      0,
		`agcmd_cache_entries`:                      5,
		`agcmd_job_seconds_count`:                  5,
	}
	for k, v := range want {
		if got, ok := m[k]; !ok || got != v {
			t.Errorf("%s = %v, want %v\nfull metrics:\n%s", k, m[k], v, raw)
		}
	}
	if int64(m[`agcmd_runs_total`]) != s.Runs() {
		t.Errorf("runs_total %v != Runs() %d", m[`agcmd_runs_total`], s.Runs())
	}
}

// TestMetricsDeterministicEmission: two scrapes of the same state must be
// byte-identical (sorted labels, fixed family order).
func TestMetricsDeterministicEmission(t *testing.T) {
	m := newMetrics()
	for _, r := range []string{"miss", "hit", "shed", "coalesced", "rejected", "hit"} {
		m.IncRequest(r)
	}
	m.IncRun(false)
	m.ObserveJob(0.003)
	m.ObserveJob(7)
	m.ObserveJob(1e6) // beyond the last bound: +Inf bucket only
	g := gauges{QueueDepth: 2, Inflight: 1, CacheEntries: 3, CacheEvicted: 4, Draining: true}
	var a, b bytes.Buffer
	m.WriteText(&a, g)
	m.WriteText(&b, g)
	if a.String() != b.String() {
		t.Fatal("two scrapes of identical state differ")
	}
	for _, want := range []string{
		`agcmd_requests_total{result="hit"} 2`,
		`agcmd_job_seconds_bucket{le="0.005"} 1`,
		`agcmd_job_seconds_bucket{le="+Inf"} 3`,
		`agcmd_job_seconds_count 3`,
		`agcmd_draining 1`,
	} {
		if !strings.Contains(a.String(), want) {
			t.Errorf("metrics missing %q:\n%s", want, a.String())
		}
	}
}

// TestBadRequests: malformed requests are rejected with 400 and counted.
func TestBadRequests(t *testing.T) {
	s := mustNew(t, Options{Workers: 1, MaxSteps: 10})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Drain(context.Background())

	cases := []string{
		`{`,                          // syntax
		`{"steps":1}`,                // missing config
		`{"config":{"machine":"paragon","nlon":36,"nlat":24,"nlayers":3,"mesh_py":1,"mesh_px":1},"stepz":1}`, // unknown request field
		`{"config":{"machine":"paragon","nlon":36,"nlat":24,"nlayers":3,"mesh_py":1,"mesh_px":1,"fliter":"fft"}}`, // unknown config field
		`{"config":{"machine":"paragon","nlon":36,"nlat":24,"nlayers":3,"mesh_py":1,"mesh_px":1},"steps":-1}`,     // bad steps
		`{"config":{"machine":"paragon","nlon":36,"nlat":24,"nlayers":3,"mesh_py":1,"mesh_px":1},"steps":99}`,     // above MaxSteps
		`{"config":{"machine":"paragon","nlon":36,"nlat":24,"nlayers":3,"mesh_py":1,"mesh_px":1},"priority":"zz"}`, // bad priority
		`{"config":{"machine":"nocomputer","nlon":36,"nlat":24,"nlayers":3,"mesh_py":1,"mesh_px":1}}`,              // bad machine
	}
	for i, c := range cases {
		if st, _, b := postRun(t, ts.URL, c); st != http.StatusBadRequest {
			t.Errorf("case %d: status %d, want 400: %s", i, st, b)
		}
	}
	if got := s.metrics.Request("rejected"); got != uint64(len(cases)) {
		t.Errorf("rejected = %d, want %d", got, len(cases))
	}
	if s.Runs() != 0 {
		t.Errorf("bad requests must not run simulations")
	}
}

// TestCachePeekAndBackendID: GET /v1/cache/{key} replays a cached body
// without running anything, responses carry the configured backend ID, and
// the peek path keeps answering during a drain (the gateway's degraded-mode
// dependency).
func TestCachePeekAndBackendID(t *testing.T) {
	s := mustNew(t, Options{Workers: 1, BackendID: "b7"})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := reqJSON([2]int{1, 2}, "fft", 1)
	st, h, b := postRun(t, ts.URL, body)
	if st != 200 {
		t.Fatalf("run status %d: %s", st, b)
	}
	if got := h.Get("X-Agcmd-Backend"); got != "b7" {
		t.Fatalf("X-Agcmd-Backend = %q, want b7", got)
	}
	var parsed struct {
		Key string `json:"key"`
	}
	if err := json.Unmarshal(b, &parsed); err != nil || parsed.Key == "" {
		t.Fatalf("response has no key: %v", err)
	}

	peek := func(key string) (int, http.Header, []byte) {
		resp, err := http.Get(ts.URL + "/v1/cache/" + key)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, resp.Header, raw
	}

	st2, h2, b2 := peek(parsed.Key)
	if st2 != 200 {
		t.Fatalf("peek status %d: %s", st2, b2)
	}
	if !bytes.Equal(b, b2) {
		t.Fatalf("peek bytes differ from the original response")
	}
	if got := h2.Get("X-Agcmd-Cache"); got != "peek" {
		t.Errorf("peek disposition %q, want peek", got)
	}
	if st3, _, _ := peek(strings.Repeat("0", 64)); st3 != http.StatusNotFound {
		t.Errorf("peek of uncached key: status %d, want 404", st3)
	}
	if runs := s.Runs(); runs != 1 {
		t.Errorf("Runs() = %d, want 1 (peek must not run)", runs)
	}

	// Peek keeps working during (and after) a drain.
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	st4, _, b4 := peek(parsed.Key)
	if st4 != 200 || !bytes.Equal(b, b4) {
		t.Errorf("peek during drain: status %d (want 200, identical bytes)", st4)
	}
}

// TestJobTimeout: a run exceeding its budget returns 504 and counts as a
// run error; the failure is not cached, so a retry runs again.
func TestJobTimeout(t *testing.T) {
	s := mustNew(t, Options{
		Workers:    1,
		JobTimeout: 10 * time.Millisecond,
		Runner: func(ctx context.Context, cfg core.Config, steps int) (*core.Report, error) {
			return core.RunContext(ctx, cfg, steps)
		},
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Drain(context.Background())

	// Far more steps than 10ms allows.
	body := fmt.Sprintf(`{"config":{"nlon":36,"nlat":24,"nlayers":3,"machine":"paragon",`+
		`"mesh_py":2,"mesh_px":2,"filter":"fft"},"steps":%d}`, 100000)
	st, _, b := postRun(t, ts.URL, body)
	if st != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", st, b)
	}
	if errs := s.metrics.Request("miss"); errs != 1 {
		t.Errorf("miss = %d, want 1", errs)
	}
	st2, _, _ := postRun(t, ts.URL, body)
	if st2 != http.StatusGatewayTimeout {
		t.Fatalf("retry status %d, want 504", st2)
	}
	if runs := s.Runs(); runs != 2 {
		t.Errorf("Runs() = %d, want 2 (errors are not cached)", runs)
	}
}
