package server

import (
	"bytes"
	"fmt"
	"testing"
)

func TestCacheGetPut(t *testing.T) {
	c := newCache(64)
	if _, ok := c.Get("absent"); ok {
		t.Fatal("empty cache claims a hit")
	}
	c.Put("k", []byte("v1"))
	if b, ok := c.Get("k"); !ok || !bytes.Equal(b, []byte("v1")) {
		t.Fatalf("Get = %q, %v", b, ok)
	}
	// Overwrite keeps a single entry.
	c.Put("k", []byte("v2"))
	if b, _ := c.Get("k"); !bytes.Equal(b, []byte("v2")) {
		t.Fatalf("after overwrite Get = %q", b)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
}

// shardKeys returns n distinct keys that all land on the same shard, so LRU
// behavior can be tested deterministically.
func shardKeys(c *cache, n int) []string {
	target := c.shardFor("anchor")
	var keys []string
	for i := 0; len(keys) < n; i++ {
		k := fmt.Sprintf("key-%d", i)
		if c.shardFor(k) == target {
			keys = append(keys, k)
		}
	}
	return keys
}

func TestCacheLRUEviction(t *testing.T) {
	// Capacity 16 across 16 shards = 1 entry per shard... use a larger
	// cache so each shard holds 2 and eviction order is observable.
	c := newCache(32)
	keys := shardKeys(c, 3)
	c.Put(keys[0], []byte("0"))
	c.Put(keys[1], []byte("1"))
	// Touch keys[0] so keys[1] is the LRU entry.
	if _, ok := c.Get(keys[0]); !ok {
		t.Fatal("warm entry missing")
	}
	c.Put(keys[2], []byte("2")) // shard is full: must evict keys[1]
	if _, ok := c.Get(keys[1]); ok {
		t.Error("LRU entry survived eviction")
	}
	if _, ok := c.Get(keys[0]); !ok {
		t.Error("recently used entry was evicted")
	}
	if _, ok := c.Get(keys[2]); !ok {
		t.Error("new entry missing")
	}
	if ev := c.Evictions(); ev != 1 {
		t.Errorf("Evictions = %d, want 1", ev)
	}
}

func TestCacheMinimumShardCapacity(t *testing.T) {
	// A capacity below the shard count still holds at least one entry per
	// shard rather than zero.
	c := newCache(1)
	c.Put("k", []byte("v"))
	if _, ok := c.Get("k"); !ok {
		t.Fatal("tiny cache cannot hold a single entry")
	}
}

func TestCacheShardingSpreads(t *testing.T) {
	// Generous per-shard capacity: the test is about spread, not eviction,
	// and FNV does not slice 256 keys perfectly evenly.
	c := newCache(64 * cacheShards)
	for i := 0; i < 256; i++ {
		c.Put(fmt.Sprintf("key-%d", i), []byte("x"))
	}
	if c.Len() != 256 {
		t.Fatalf("Len = %d, want 256 (unexpected evictions)", c.Len())
	}
	used := 0
	for i := range c.shards {
		if c.shards[i].order.Len() > 0 {
			used++
		}
	}
	if used < cacheShards/2 {
		t.Errorf("only %d/%d shards used by 256 keys — bad key spread", used, cacheShards)
	}
}
