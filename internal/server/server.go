// Package server implements agcmd, the concurrent simulation-serving layer
// over the virtual AGCM: an HTTP daemon that accepts canonical simulation
// configs, runs them on a bounded worker pool, and exploits the virtual
// machine's bit-determinism (identical core.Config ⇒ byte-identical Report)
// with a content-addressed result cache.
//
// The request path is: canonicalize the config (core.Config.CanonicalJSON)
// → derive the cache key → serve from the sharded LRU cache on a hit →
// otherwise coalesce onto an identical in-flight run (single-flight) →
// otherwise admit into a bounded FIFO+priority queue, shedding with 429 +
// Retry-After when full.  Workers execute runs under per-job deadlines via
// core.RunContext.  Identical configs therefore cost one simulation no
// matter how many clients ask, and every response for a key is byte-
// identical — the cached bytes are the worker's bytes.
//
// Observability: /metrics (Prometheus text format), /healthz (liveness),
// /readyz (readiness — not-ready while draining, so a fronting gateway
// stops routing here before shutdown completes), and graceful drain —
// Drain stops admission, finishes accepted work, then returns.
package server

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"agcm/internal/core"
	"agcm/internal/frame"
	"agcm/internal/sim"
)

// Options configures a Server.  The zero value takes the documented
// defaults.
type Options struct {
	// Workers is the worker-pool size: the number of simulations in
	// flight at once (default 4).  Each job is itself a multi-goroutine
	// virtual machine, so a worker is a simulation slot, not an OS thread.
	Workers int
	// QueueCapacity bounds the admission queue across all priority
	// classes (default 64); beyond it requests are shed with 429.
	QueueCapacity int
	// Scheduler selects the admission-queue policy: "fcfs" (default),
	// "priority", or "sjf" (see NewScheduler).
	Scheduler string
	// CacheEntries bounds the result cache (default 1024 entries).
	CacheEntries int
	// JobTimeout is the default per-job execution budget (default 60s).
	// A request's timeout_ms may lower it but never raise it.
	JobTimeout time.Duration
	// MaxSteps rejects requests asking for more measured steps (0 = no
	// limit): a guard against a single request monopolizing a worker.
	MaxSteps int
	// BackendID, when set, is stamped on every response as the
	// X-Agcmd-Backend header so a fronting gateway and its load tools can
	// attribute responses to cluster members.
	BackendID string
	// CacheDir, when set, enables the disk cache tier: a content-addressed
	// frame store under the in-memory LRU.  Every finished run is persisted
	// there before its response is released, so any body a client (or the
	// fronting gateway) has observed survives a SIGKILL — a restarted
	// daemon pointed at the same directory serves byte-identical bodies
	// from disk without re-running, and replicas sharing the directory
	// share the warmth.  Empty disables the tier.
	CacheDir string
	// CacheDiskBytes bounds the disk tier (default frame.DefaultStoreBytes
	// when CacheDir is set).
	CacheDiskBytes int64
	// Runner executes simulations; nil means core.RunContext.  Tests
	// substitute blockers and counters.
	Runner Runner
	// CostOracle prices jobs for the sjf scheduler; nil means the built-in
	// linear core.PredictCost.  `agcmd -cost-oracle roofline` installs a
	// calibrated roofline.Machine here so job ordering follows predicted
	// host seconds instead of 1996 virtual seconds.
	CostOracle core.CostOracle
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = 4
	}
	if o.QueueCapacity <= 0 {
		o.QueueCapacity = 64
	}
	if o.CacheEntries <= 0 {
		o.CacheEntries = 1024
	}
	if o.JobTimeout <= 0 {
		o.JobTimeout = 60 * time.Second
	}
	if o.Runner == nil {
		o.Runner = func(ctx context.Context, cfg core.Config, steps int) (*core.Report, error) {
			return core.RunContext(ctx, cfg, steps)
		}
	}
	return o
}

// flight is one in-flight resolution (simulation run, disk-tier read, or
// shed verdict) that concurrent identical requests wait on.  The result
// fields are written exactly once, before done closes.
type flight struct {
	done   chan struct{}
	status int
	body   []byte
	// isFrame marks body as a response frame to serve via content
	// negotiation; false means a raw JSON (error) body.
	isFrame bool
	// retryAfter, when nonzero, is the Retry-After hint (seconds) replayed
	// to every waiter of a shed flight.
	retryAfter int
}

// Server is the simulation-serving daemon's HTTP-independent core plus its
// http.Handler face.
type Server struct {
	opt     Options
	queue   Scheduler
	cache   *cache
	store   *frame.Store // disk tier; nil when Options.CacheDir is empty
	metrics *metrics

	flightMu sync.Mutex
	flights  map[string]*flight

	inflight atomic.Int64
	runs     atomic.Int64
	seq      atomic.Uint64
	draining atomic.Bool
	wg       sync.WaitGroup
}

// New builds a Server and starts its worker pool.  Call Drain to stop.
// The error sources are an unknown scheduler name and opening the disk
// cache tier; with Scheduler and CacheDir unset, New cannot fail.
func New(opt Options) (*Server, error) {
	opt = opt.withDefaults()
	sched, err := NewScheduler(opt.Scheduler, opt.QueueCapacity)
	if err != nil {
		return nil, err
	}
	s := &Server{
		opt:     opt,
		queue:   sched,
		cache:   newCache(opt.CacheEntries),
		metrics: newMetrics(),
		flights: make(map[string]*flight),
	}
	if opt.CacheDir != "" {
		st, err := frame.OpenStore(opt.CacheDir, opt.CacheDiskBytes)
		if err != nil {
			return nil, fmt.Errorf("server: disk cache tier: %w", err)
		}
		s.store = st
	}
	s.wg.Add(opt.Workers)
	for i := 0; i < opt.Workers; i++ {
		go s.worker()
	}
	return s, nil
}

// Runs returns how many simulations have actually executed — the
// single-flight and cache tests' run counter.
func (s *Server) Runs() int64 { return s.runs.Load() }

// SchedulerName reports the admission policy the server was built with.
func (s *Server) SchedulerName() string { return s.queue.Name() }

// Handler returns the daemon's HTTP mux: POST /v1/run, GET /v1/cache/{key},
// GET /healthz, GET /readyz, GET /metrics.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/run", s.handleRun)
	mux.HandleFunc("/v1/cache/", s.handleCachePeek)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	if s.opt.BackendID == "" {
		return mux
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Agcmd-Backend", s.opt.BackendID)
		mux.ServeHTTP(w, r)
	})
}

// Drain performs the graceful-shutdown sequence: refuse new requests,
// finish every accepted job (queued and running), then return.  It gives
// up when ctx expires.  Drain is what the daemon runs on SIGTERM.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	s.queue.Close()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("server: drain interrupted: %w", ctx.Err())
	}
}

// request is the POST /v1/run body.  Unknown fields are rejected at both
// levels: here and inside the canonical config.
type request struct {
	// Config is a canonical config object (see core.ConfigFromCanonicalJSON).
	Config json.RawMessage `json:"config"`
	// Steps is the number of measured steps (default 1).
	Steps int `json:"steps"`
	// Priority is the admission class: "high", "normal" (default), "low".
	Priority string `json:"priority"`
	// SLO is the service-level class: "interactive" or "batch".  Empty
	// derives it from the priority (high ⇒ interactive), preserving the
	// pre-SLO behavior of every existing client.  The X-Agcm-SLO request
	// header is the fallback when the body leaves it empty, so a gateway
	// can stamp the class without rewriting bodies.
	SLO string `json:"slo"`
	// TimeoutMS lowers the server's per-job execution budget.
	TimeoutMS int `json:"timeout_ms"`
}

// SLOHeader is the request/response header carrying the SLO class between
// gateway and backends.
const SLOHeader = "X-Agcm-SLO"

// errorBody is the JSON error envelope.  Marshaling a one-string struct
// cannot fail, but the error is checked anyway (a silent `_` here once hid
// the same pattern on the response path): the fallback is a fixed, valid
// envelope rather than an empty body.
func errorBody(msg string) []byte {
	raw, err := json.Marshal(struct {
		Error string `json:"error"`
	}{msg})
	if err != nil {
		return []byte(`{"error":"internal error encoding error body"}` + "\n")
	}
	return append(raw, '\n')
}

func writeJSON(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(body)
}

// ReportWire is the deterministic wire form of a core.Report, shared by
// the JSON body and the binary report section of a response frame.  Fields
// are a fixed set in a fixed order; floats round-trip bit-exactly (JSON's
// shortest formatting, the frame's IEEE-754 bit patterns), so byte-equal
// bodies mean bit-equal reports and vice versa.
type ReportWire struct {
	Ranks            int       `json:"ranks"`
	Steps            int       `json:"steps"`
	StepsPerDay      int       `json:"steps_per_day"`
	FilterTime       float64   `json:"filter_s_day"`
	FDTime           float64   `json:"fd_s_day"`
	CommTime         float64   `json:"comm_s_day"`
	Dynamics         float64   `json:"dynamics_s_day"`
	PhysicsTime      float64   `json:"physics_s_day"`
	Total            float64   `json:"total_s_day"`
	PhysicsLoads     []float64 `json:"physics_loads"`
	FilterLoads      []float64 `json:"filter_loads"`
	PhysicsImbalance float64   `json:"physics_imbalance"`
	FilterImbalance  float64   `json:"filter_imbalance"`
	MessagesPerStep  float64   `json:"messages_per_step"`
	BytesPerStep     float64   `json:"bytes_per_step"`
	MaxWaitShare     float64   `json:"max_wait_share"`
	MaxAbsH          float64   `json:"max_abs_h"`
}

// responseJSON renders the byte-exact 200 JSON body for a finished run —
// the bytes embedded as the response frame's JSON section and replayed
// verbatim to every JSON client.  The marshal error is propagated (it was
// once silently discarded here): a run whose report cannot be encoded must
// surface as a 500, not as an empty body.
func responseJSON(key string, canonical []byte, steps int, rep *core.Report) ([]byte, error) {
	raw, err := json.Marshal(struct {
		Key    string          `json:"key"`
		Steps  int             `json:"steps"`
		Config json.RawMessage `json:"config"`
		Report ReportWire      `json:"report"`
	}{
		Key:    key,
		Steps:  steps,
		Config: canonical,
		Report: ReportWire{
			Ranks:            rep.Ranks,
			Steps:            rep.Steps,
			StepsPerDay:      rep.StepsPerDay,
			FilterTime:       rep.FilterTime,
			FDTime:           rep.FDTime,
			CommTime:         rep.CommTime,
			Dynamics:         rep.Dynamics,
			PhysicsTime:      rep.PhysicsTime,
			Total:            rep.Total,
			PhysicsLoads:     rep.PhysicsLoads,
			FilterLoads:      rep.FilterLoads,
			PhysicsImbalance: core.Imbalance(rep.PhysicsLoads),
			FilterImbalance:  core.Imbalance(rep.FilterLoads),
			MessagesPerStep:  rep.MessagesPerStep,
			BytesPerStep:     rep.BytesPerStep,
			MaxWaitShare:     rep.MaxWaitShare,
			MaxAbsH:          rep.MaxAbsH,
		},
	})
	if err != nil {
		return nil, fmt.Errorf("server: encoding response body: %w", err)
	}
	return append(raw, '\n'), nil
}

// JobKeyFor derives the cache key for a config and step count: the config's
// content address extended with the one run parameter outside the config.
func JobKeyFor(cfg core.Config, steps int) (string, error) {
	ck, err := cfg.ConfigKey()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256([]byte(ck + ":" + strconv.Itoa(steps)))
	return hex.EncodeToString(sum[:]), nil
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorBody("POST only"))
		return
	}
	if s.draining.Load() {
		s.metrics.IncRequest("draining")
		writeJSON(w, http.StatusServiceUnavailable, errorBody("draining"))
		return
	}
	dec := json.NewDecoder(io.LimitReader(r.Body, 1<<20))
	dec.DisallowUnknownFields()
	var req request
	if err := dec.Decode(&req); err != nil {
		s.metrics.IncRequest("rejected")
		writeJSON(w, http.StatusBadRequest, errorBody("bad request: "+err.Error()))
		return
	}
	if len(req.Config) == 0 {
		s.metrics.IncRequest("rejected")
		writeJSON(w, http.StatusBadRequest, errorBody("missing config"))
		return
	}
	cfg, err := core.ConfigFromCanonicalJSON(req.Config)
	if err != nil {
		s.metrics.IncRequest("rejected")
		writeJSON(w, http.StatusBadRequest, errorBody(err.Error()))
		return
	}
	steps := req.Steps
	if steps == 0 {
		steps = 1
	}
	if steps < 0 || (s.opt.MaxSteps > 0 && steps > s.opt.MaxSteps) {
		s.metrics.IncRequest("rejected")
		writeJSON(w, http.StatusBadRequest, errorBody(fmt.Sprintf("steps %d out of range", steps)))
		return
	}
	prio, ok := PriorityByName(req.Priority)
	if !ok {
		s.metrics.IncRequest("rejected")
		writeJSON(w, http.StatusBadRequest, errorBody(fmt.Sprintf("unknown priority %q", req.Priority)))
		return
	}
	slo := req.SLO
	if slo == "" {
		slo = r.Header.Get(SLOHeader)
	}
	class, ok := ClassByName(slo, prio)
	if !ok {
		s.metrics.IncRequest("rejected")
		writeJSON(w, http.StatusBadRequest, errorBody(fmt.Sprintf("unknown slo class %q", slo)))
		return
	}
	// Canonicalize once: validates the config, yields the echoed form and
	// the cache address.
	canonical, err := cfg.CanonicalJSON()
	if err != nil {
		s.metrics.IncRequest("rejected")
		writeJSON(w, http.StatusBadRequest, errorBody(err.Error()))
		return
	}
	key, err := JobKeyFor(cfg, steps)
	if err != nil {
		s.metrics.IncRequest("rejected")
		writeJSON(w, http.StatusBadRequest, errorBody(err.Error()))
		return
	}
	timeout := s.opt.JobTimeout
	if req.TimeoutMS > 0 {
		if d := time.Duration(req.TimeoutMS) * time.Millisecond; d < timeout {
			timeout = d
		}
	}
	// Every request that passed validation counts toward its class — hits,
	// coalesced waits, and sheds included — so a load client's per-class
	// issue counts reconcile exactly against this family.
	s.metrics.IncClass(class.String())

	// Cache, single-flight and admission decide under one lock, so an
	// identical concurrent request can never slip between the cache miss
	// and the flight registration and start a duplicate run.
	s.flightMu.Lock()
	if body, ok := s.cache.Get(key); ok {
		s.flightMu.Unlock()
		s.metrics.IncRequest("hit")
		w.Header().Set("X-Agcmd-Cache", "hit")
		writeNegotiated(w, r, http.StatusOK, body)
		return
	}
	if f := s.flights[key]; f != nil {
		s.flightMu.Unlock()
		s.metrics.IncRequest("coalesced")
		s.await(w, r, f, "coalesced")
		return
	}
	// Register the flight before deciding how to fill it (disk tier, queue,
	// or shed verdict), so identical concurrent requests coalesce onto this
	// one instead of racing the same decision.
	f := &flight{done: make(chan struct{})}
	s.flights[key] = f
	s.flightMu.Unlock()

	// Disk tier: a frame persisted by this process — or by a predecessor
	// killed without warning — fills the flight without consuming a worker
	// or re-running the simulation.
	if s.store != nil {
		if fb, ok := s.store.Get(key); ok {
			s.cache.Put(key, fb)
			s.finishFlight(key, f, http.StatusOK, fb, true, 0)
			s.metrics.IncRequest("disk_hit")
			w.Header().Set("X-Agcmd-Cache", "disk-hit")
			writeNegotiated(w, r, http.StatusOK, fb)
			return
		}
	}

	// The sjf oracle: predicted run time from the configured cost oracle
	// (linear machine model by default, roofline when installed).  A failed
	// prediction must degrade the *ordering*, never the service: cost 0 is
	// the sentinel that sorts the job ahead of every priced job, where the
	// Seq tie-break reduces to fcfs order — the job still runs, it is just
	// no longer sized.  Real predictions are always positive, so the
	// sentinel cannot collide.
	cost, err := core.PredictCostWith(s.opt.CostOracle, cfg, steps)
	if err != nil {
		s.metrics.IncRequest("predict_fallback")
		cost = 0
	}
	job := &Job{
		Key:       key,
		Config:    cfg,
		Canonical: canonical,
		Steps:     steps,
		Timeout:   timeout,
		Priority:  prio,
		Class:     class,
		Cost:      cost,
		Seq:       s.seq.Add(1),
		flight:    f,
		enqueued:  time.Now(),
	}
	if !s.queue.Push(job) {
		if s.draining.Load() {
			s.metrics.IncRequest("draining")
			body := errorBody("draining")
			s.finishFlight(key, f, http.StatusServiceUnavailable, body, false, 0)
			writeJSON(w, http.StatusServiceUnavailable, body)
			return
		}
		s.metrics.IncRequest("shed")
		ra := s.retryAfterSeconds()
		body := errorBody("queue full")
		s.finishFlight(key, f, http.StatusTooManyRequests, body, false, ra)
		w.Header().Set("Retry-After", strconv.Itoa(ra))
		writeJSON(w, http.StatusTooManyRequests, body)
		return
	}
	s.metrics.IncRequest("miss")
	s.await(w, r, f, "miss")
}

// finishFlight publishes a flight's result and unregisters it.  The result
// fields are written before done closes (waiters only read after), and
// callers that cache a success body do so before calling finishFlight, so
// a request arriving after the delete finds the cache filled rather than
// restarting the work.
func (s *Server) finishFlight(key string, f *flight, status int, body []byte, isFrame bool, retryAfter int) {
	f.status = status
	f.body = body
	f.isFrame = isFrame
	f.retryAfter = retryAfter
	s.flightMu.Lock()
	delete(s.flights, key)
	s.flightMu.Unlock()
	close(f.done)
}

// await parks the request on its flight and writes the finished result.
// If the client disconnects first the job still completes (and caches) for
// whoever asks next.
func (s *Server) await(w http.ResponseWriter, r *http.Request, f *flight, disposition string) {
	select {
	case <-f.done:
		w.Header().Set("X-Agcmd-Cache", disposition)
		if f.retryAfter > 0 {
			w.Header().Set("Retry-After", strconv.Itoa(f.retryAfter))
		}
		if f.isFrame {
			writeNegotiated(w, r, f.status, f.body)
			return
		}
		writeJSON(w, f.status, f.body)
	case <-r.Context().Done():
	}
}

// retryAfterSeconds estimates when shed traffic should come back: the
// backlog ahead of a new arrival, paced at the observed mean job latency
// over the pool, clamped to [1, 60] seconds.
func (s *Server) retryAfterSeconds() int {
	avg := s.metrics.AvgJobSeconds()
	if avg <= 0 {
		avg = 1
	}
	backlog := float64(s.queue.Depth()) + float64(s.inflight.Load())
	est := int(math.Ceil(avg * backlog / float64(s.opt.Workers)))
	if est < 1 {
		est = 1
	}
	if est > 60 {
		est = 60
	}
	return est
}

// worker pulls jobs until the queue closes and is drained.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		job, ok := s.queue.Pop()
		if !ok {
			return
		}
		s.inflight.Add(1)
		//lint:allow ctxflow deliberate root: an accepted job runs to completion for the cache even after every waiting client disconnects; the per-job Timeout still bounds it
		ctx, cancel := context.WithTimeout(context.Background(), job.Timeout)
		start := time.Now()
		rep, err := s.opt.Runner(ctx, job.Config, job.Steps)
		elapsed := time.Since(start)
		cancel()
		s.runs.Add(1)
		s.metrics.IncRun(err != nil)
		s.metrics.ObserveJob(elapsed.Seconds())
		s.metrics.ObserveClassJob(job.Class.String(),
			start.Sub(job.enqueued).Seconds(), elapsed.Seconds())

		var status int
		var body []byte
		isFrame := false
		if err != nil {
			var ce *sim.CanceledError
			if errors.As(err, &ce) {
				status = http.StatusGatewayTimeout
				body = errorBody("simulation exceeded its deadline: " + err.Error())
			} else {
				status = http.StatusInternalServerError
				body = errorBody(err.Error())
			}
		} else if fb, ferr := encodeResponseFrame(job.Key, job.Canonical, job.Steps, rep); ferr != nil {
			status = http.StatusInternalServerError
			body = errorBody(ferr.Error())
		} else {
			status = http.StatusOK
			body = fb
			isFrame = true
			s.cache.Put(job.Key, fb)
			if s.store != nil {
				// Persist before the flight closes: once any client has
				// observed this response, the frame is already durable, so
				// a SIGKILL cannot lose an observed body.
				if perr := s.store.Put(job.Key, fb); perr != nil {
					s.metrics.IncRequest("disk_put_error")
				}
			}
		}

		s.finishFlight(job.Key, job.flight, status, body, isFrame, 0)
		s.inflight.Add(-1)
	}
}

// handleHealthz is the liveness probe: "is the process up?"  It stays 200
// through a drain — the process is alive and still answering accepted
// work — so an orchestrator does not kill a draining daemon early.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ok\n")
}

// handleReadyz is the readiness probe: "should new traffic be routed
// here?"  A draining server reports not-ready immediately, before SIGTERM
// completes, so a fronting gateway stops routing while accepted jobs
// finish.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ready\n")
}

// ServeCachePeek serves one GET /v1/cache/{key} request directly — the hot
// replay path without mux dispatch, exported so the host benchmark harness
// (internal/bench) can pin the per-hit allocation budget.
func (s *Server) ServeCachePeek(w http.ResponseWriter, r *http.Request) {
	s.handleCachePeek(w, r)
}

// handleCachePeek serves GET /v1/cache/{key}: the cached response body for
// a job key, or 404.  It never runs a simulation and keeps working during a
// drain — it is the gateway's graceful-degradation path (any backend that
// has the bytes can answer for a saturated or dying shard).
func (s *Server) handleCachePeek(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, errorBody("GET only"))
		return
	}
	key := r.URL.Path[len("/v1/cache/"):]
	if key == "" {
		writeJSON(w, http.StatusBadRequest, errorBody("missing key"))
		return
	}
	if body, ok := s.cache.Get(key); ok {
		s.metrics.IncRequest("peek_hit")
		w.Header().Set("X-Agcmd-Cache", "peek")
		writeNegotiated(w, r, http.StatusOK, body)
		return
	}
	// Disk fallthrough: a restarted (or sibling) daemon can answer peeks
	// for anything persisted before the memory tier was lost.
	if s.store != nil && frame.ValidKey(key) {
		if fb, ok := s.store.Get(key); ok {
			s.cache.Put(key, fb)
			s.metrics.IncRequest("peek_disk_hit")
			w.Header().Set("X-Agcmd-Cache", "peek-disk")
			writeNegotiated(w, r, http.StatusOK, fb)
			return
		}
	}
	s.metrics.IncRequest("peek_miss")
	writeJSON(w, http.StatusNotFound, errorBody("not cached"))
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	g := gauges{
		QueueDepth:   s.queue.Depth(),
		Inflight:     int(s.inflight.Load()),
		CacheEntries: s.cache.Len(),
		CacheEvicted: s.cache.Evictions(),
		Draining:     s.draining.Load(),
		Scheduler:    s.queue.Name(),
	}
	if s.store != nil {
		g.DiskEnabled = true
		g.DiskEntries = s.store.Len()
		g.DiskBytes = s.store.Bytes()
		g.DiskEvicted = s.store.Evictions()
		g.DiskCorrupt = s.store.CorruptDropped()
	}
	s.metrics.WriteText(w, g)
}
