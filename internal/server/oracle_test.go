package server

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"agcm/internal/core"
)

// failingOracle never prices a job: the shape of a roofline oracle handed a
// config outside its calibration.
type failingOracle struct{ calls atomic.Int64 }

func (o *failingOracle) Name() string { return "failing" }

func (o *failingOracle) PredictSeconds(cfg core.Config, steps int) (float64, error) {
	o.calls.Add(1)
	return 0, fmt.Errorf("unpriceable")
}

// recordingOracle prices every job at a fixed value and counts consultations.
type recordingOracle struct {
	calls   atomic.Int64
	seconds float64
}

func (o *recordingOracle) Name() string { return "recording" }

func (o *recordingOracle) PredictSeconds(cfg core.Config, steps int) (float64, error) {
	o.calls.Add(1)
	return o.seconds, nil
}

// TestSJFCostZeroSentinelIsFCFS pins the fallback ordering contract at the
// scheduler level: unpriced jobs (cost 0) pop before every priced job, and
// among themselves in arrival order — sjf degrades to fcfs, never sheds.
func TestSJFCostZeroSentinelIsFCFS(t *testing.T) {
	s, err := NewScheduler("sjf", 16)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	costs := []float64{4, 0, 9, 0, 1, 0}
	for i, c := range costs {
		if !s.Push(schedJob(uint64(i+1), Batch, Normal, c)) {
			t.Fatalf("push %d shed", i+1)
		}
	}
	want := []uint64{2, 4, 6, 5, 1, 3} // sentinels in arrival order, then by cost
	for i, j := range popAll(t, s, len(costs)) {
		if j.Seq != want[i] {
			t.Fatalf("pop %d: seq %d, want %d", i, j.Seq, want[i])
		}
	}
}

// TestServerOracleFallbackNeverSheds drives the sjf server with an oracle
// that fails on every job: each request must still be admitted and run.
func TestServerOracleFallbackNeverSheds(t *testing.T) {
	oracle := &failingOracle{}
	var ran atomic.Int64
	s := mustNew(t, Options{
		Workers:    2,
		Scheduler:  "sjf",
		CostOracle: oracle,
		Runner: func(ctx context.Context, cfg core.Config, steps int) (*core.Report, error) {
			ran.Add(1)
			return stubReport(cfg, steps), nil
		},
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Drain(context.Background())

	const n = 6
	for i := 0; i < n; i++ {
		status, _, body := postRun(t, ts.URL, reqJSON([2]int{1, 1}, "fft", i+1))
		if status != http.StatusOK {
			t.Fatalf("request %d: status %d, body %s", i, status, body)
		}
	}
	if got := ran.Load(); got != n {
		t.Fatalf("%d runs executed, want %d", got, n)
	}
	if got := oracle.calls.Load(); got != n {
		t.Fatalf("oracle consulted %d times, want %d", got, n)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprintf(`agcmd_requests_total{result="predict_fallback"} %d`, n)
	if !strings.Contains(string(raw), want) {
		t.Fatalf("metrics missing %q:\n%s", want, raw)
	}
}

// TestServerConsultsCustomOracle checks the Options.CostOracle seam: a
// working oracle is consulted once per admitted job.
func TestServerConsultsCustomOracle(t *testing.T) {
	oracle := &recordingOracle{seconds: 3.25}
	s := mustNew(t, Options{
		Workers:    1,
		Scheduler:  "sjf",
		CostOracle: oracle,
		Runner: func(ctx context.Context, cfg core.Config, steps int) (*core.Report, error) {
			return stubReport(cfg, steps), nil
		},
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Drain(context.Background())

	if status, _, body := postRun(t, ts.URL, reqJSON([2]int{1, 2}, "fft", 2)); status != http.StatusOK {
		t.Fatalf("status %d, body %s", status, body)
	}
	if got := oracle.calls.Load(); got != 1 {
		t.Fatalf("oracle consulted %d times, want 1", got)
	}
	// A cache hit must not re-consult the oracle: pricing happens only on
	// admission.
	if status, _, _ := postRun(t, ts.URL, reqJSON([2]int{1, 2}, "fft", 2)); status != http.StatusOK {
		t.Fatal("cache hit failed")
	}
	if got := oracle.calls.Load(); got != 1 {
		t.Fatalf("cache hit re-consulted the oracle (%d calls)", got)
	}
}
