package server

import (
	"fmt"
	"testing"
)

func namedJob(name string, p Priority) *Job {
	return &Job{Key: name, Priority: p}
}

func TestQueuePriorityOrder(t *testing.T) {
	q := newQueue(16)
	for i, p := range []Priority{Low, Normal, High, Normal, High, Low} {
		if !q.Push(namedJob(fmt.Sprintf("%s-%d", p, i), p)) {
			t.Fatalf("push %d failed", i)
		}
	}
	q.Close()
	want := []string{"high-2", "high-4", "normal-1", "normal-3", "low-0", "low-5"}
	for i, w := range want {
		j, ok := q.Pop()
		if !ok {
			t.Fatalf("pop %d: queue ended early", i)
		}
		if j.Key != w {
			t.Errorf("pop %d = %s, want %s", i, j.Key, w)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Error("pop after drain should report closed")
	}
}

func TestQueueShedsWhenFull(t *testing.T) {
	q := newQueue(2)
	if !q.Push(namedJob("a", Normal)) || !q.Push(namedJob("b", High)) {
		t.Fatal("pushes within capacity failed")
	}
	// Capacity is shared across classes: even High is shed once full.
	if q.Push(namedJob("c", High)) {
		t.Error("push beyond capacity succeeded")
	}
	if d := q.Depth(); d != 2 {
		t.Errorf("depth = %d, want 2", d)
	}
	if j, ok := q.Pop(); !ok || j.Key != "b" {
		t.Errorf("pop = %v, want b", j)
	}
	// A slot freed: admission works again.
	if !q.Push(namedJob("d", Low)) {
		t.Error("push after pop failed")
	}
}

func TestQueueCloseStopsAdmissionKeepsDraining(t *testing.T) {
	q := newQueue(4)
	q.Push(namedJob("a", Normal))
	q.Close()
	if q.Push(namedJob("b", Normal)) {
		t.Error("push after close succeeded")
	}
	if j, ok := q.Pop(); !ok || j.Key != "a" {
		t.Errorf("pop after close = %v, want the already-accepted job", j)
	}
	if _, ok := q.Pop(); ok {
		t.Error("empty closed queue still popping")
	}
}

func TestQueuePopBlocksUntilPush(t *testing.T) {
	q := newQueue(4)
	got := make(chan string, 1)
	go func() {
		j, ok := q.Pop()
		if !ok {
			got <- "<closed>"
			return
		}
		got <- j.Key
	}()
	q.Push(namedJob("wake", Normal))
	if k := <-got; k != "wake" {
		t.Fatalf("pop woke with %q", k)
	}
}

func TestPriorityByName(t *testing.T) {
	cases := []struct {
		in   string
		want Priority
		ok   bool
	}{
		{"", Normal, true},
		{"high", High, true},
		{"normal", Normal, true},
		{"low", Low, true},
		{"urgent", 0, false},
	}
	for _, c := range cases {
		got, ok := PriorityByName(c.in)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("PriorityByName(%q) = %v, %v; want %v, %v", c.in, got, ok, c.want, c.ok)
		}
	}
	for _, p := range []Priority{High, Normal, Low} {
		back, ok := PriorityByName(p.String())
		if !ok || back != p {
			t.Errorf("%v does not round-trip through its name", p)
		}
	}
}
