package server

// The scheduler seam: the admission queue behind POST /v1/run is a
// pluggable policy.  All schedulers share the contract of the original
// queue — bounded, non-blocking Push that sheds at the door, blocking Pop,
// Close-then-drain — and differ only in which admitted job a freed worker
// receives next:
//
//   fcfs      admission-priority bands, FIFO within (the historical
//             behavior, and still the default),
//   priority  SLO class first (interactive before batch), then admission
//             priority, then arrival,
//   sjf       cheapest predicted job first (the configured core.CostOracle;
//             the linear PredictCost by default, the calibrated roofline
//             model under `-cost-oracle roofline`), arrival breaks ties.
//             A job whose prediction failed carries the cost-0 sentinel: it
//             sorts ahead of every priced job and the Seq tie-break makes
//             those jobs mutually fcfs — prediction failure degrades the
//             ordering, never the admission.
//
// Scheduling never changes results — the same config produces the same
// bytes under any policy — only who waits.

import (
	"container/heap"
	"fmt"
	"sync"
)

// SLOClass is a request's service-level class, orthogonal to admission
// Priority: Priority says who wins a seat in the queue under the fcfs
// policy, SLOClass says what the client's latency expectation is — which
// class-aware schedulers exploit and per-class metrics report.
type SLOClass int

const (
	// Interactive is latency-sensitive traffic: operator probes, live
	// sweeps.  Only interactive requests are hedged by the gateway.
	Interactive SLOClass = iota
	// Batch is throughput traffic that tolerates queueing.
	Batch
	numClasses
)

// String returns the class name used in requests and metric labels.
func (c SLOClass) String() string {
	switch c {
	case Interactive:
		return "interactive"
	case Batch:
		return "batch"
	}
	return "invalid"
}

// ClassByName parses a request's slo field.  The empty string derives the
// class from the admission priority — high-priority requests are
// interactive, everything else batch — which preserves the serving stack's
// pre-SLO behavior exactly (hedging used to key on priority alone).
func ClassByName(name string, prio Priority) (SLOClass, bool) {
	switch name {
	case "":
		if prio == High {
			return Interactive, true
		}
		return Batch, true
	case "interactive":
		return Interactive, true
	case "batch":
		return Batch, true
	}
	return 0, false
}

// Scheduler is the admission queue's policy seam.  Implementations must be
// safe for concurrent use; Push must never block (a full or closed
// scheduler sheds), Pop blocks until a job or close-and-drained, and Close
// stops admission while Pop keeps draining accepted jobs.
type Scheduler interface {
	// Name is the policy name reported in /metrics.
	Name() string
	// Push admits a job, or reports false when full or closed.
	Push(*Job) bool
	// Pop blocks for the next job under the policy's order and reports
	// false once the scheduler is closed and drained.
	Pop() (*Job, bool)
	// Close stops admission; accepted jobs still drain through Pop.
	Close()
	// Depth returns the number of queued (not yet popped) jobs.
	Depth() int
}

// SchedulerNames lists the available policies, default first.
func SchedulerNames() []string { return []string{"fcfs", "priority", "sjf"} }

// NewScheduler builds the named scheduling policy over a bounded queue.
// The empty name is fcfs, the historical default.
func NewScheduler(name string, capacity int) (Scheduler, error) {
	switch name {
	case "", "fcfs":
		return newQueue(capacity), nil
	case "priority":
		return newHeapSched("priority", capacity, func(a, b *Job) bool {
			if a.Class != b.Class {
				return a.Class < b.Class
			}
			if a.Priority != b.Priority {
				return a.Priority < b.Priority
			}
			return a.Seq < b.Seq
		}), nil
	case "sjf":
		return newHeapSched("sjf", capacity, func(a, b *Job) bool {
			if a.Cost != b.Cost {
				return a.Cost < b.Cost
			}
			return a.Seq < b.Seq
		}), nil
	}
	return nil, fmt.Errorf("server: unknown scheduler %q (fcfs, priority, sjf)", name)
}

// jobPQ is the heap under a heapSched; less must be a strict total order
// (every policy tie-breaks on the admission sequence number, which is
// unique), so Pop order is deterministic for any fixed Push order.
type jobPQ struct {
	jobs []*Job
	less func(a, b *Job) bool
}

func (pq *jobPQ) Len() int           { return len(pq.jobs) }
func (pq *jobPQ) Less(i, j int) bool { return pq.less(pq.jobs[i], pq.jobs[j]) }
func (pq *jobPQ) Swap(i, j int)      { pq.jobs[i], pq.jobs[j] = pq.jobs[j], pq.jobs[i] }
func (pq *jobPQ) Push(x any)         { pq.jobs = append(pq.jobs, x.(*Job)) }
func (pq *jobPQ) Pop() any {
	old := pq.jobs
	n := len(old)
	x := old[n-1]
	old[n-1] = nil
	pq.jobs = old[:n-1]
	return x
}

// heapSched is a bounded priority-queue scheduler with the same
// shed/drain contract as the fcfs queue.
type heapSched struct {
	mu     sync.Mutex
	cond   *sync.Cond
	name   string
	cap    int
	pq     jobPQ
	closed bool
}

func newHeapSched(name string, capacity int, less func(a, b *Job) bool) *heapSched {
	h := &heapSched{name: name, cap: capacity, pq: jobPQ{less: less}}
	h.cond = sync.NewCond(&h.mu)
	return h
}

func (h *heapSched) Name() string { return h.name }

func (h *heapSched) Push(j *Job) bool {
	h.mu.Lock()
	if h.closed || len(h.pq.jobs) >= h.cap {
		h.mu.Unlock()
		return false
	}
	heap.Push(&h.pq, j)
	h.mu.Unlock()
	h.cond.Signal()
	return true
}

func (h *heapSched) Pop() (*Job, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for {
		if len(h.pq.jobs) > 0 {
			return heap.Pop(&h.pq).(*Job), true
		}
		if h.closed {
			return nil, false
		}
		h.cond.Wait()
	}
}

func (h *heapSched) Close() {
	h.mu.Lock()
	h.closed = true
	h.mu.Unlock()
	h.cond.Broadcast()
}

func (h *heapSched) Depth() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.pq.jobs)
}
