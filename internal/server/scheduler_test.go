package server

import (
	"sync"
	"testing"
	"time"
)

// Scheduler invariants, table-driven across every policy.  These run under
// -race in CI: the schedulers are the only concurrency seam between the HTTP
// handlers and the worker pool.

func schedJob(seq uint64, class SLOClass, prio Priority, cost float64) *Job {
	return &Job{
		Key:      "k",
		Seq:      seq,
		Class:    class,
		Priority: prio,
		Cost:     cost,
		enqueued: time.Now(),
	}
}

func popAll(t *testing.T, s Scheduler, n int) []*Job {
	t.Helper()
	out := make([]*Job, 0, n)
	for i := 0; i < n; i++ {
		j, ok := s.Pop()
		if !ok {
			t.Fatalf("Pop %d/%d reported drained", i, n)
		}
		out = append(out, j)
	}
	return out
}

func TestSchedulerNamesConstructible(t *testing.T) {
	for _, name := range SchedulerNames() {
		s, err := NewScheduler(name, 4)
		if err != nil {
			t.Fatalf("NewScheduler(%q): %v", name, err)
		}
		if s.Name() != name {
			t.Fatalf("NewScheduler(%q).Name() = %q", name, s.Name())
		}
		s.Close()
	}
	if s, err := NewScheduler("", 4); err != nil || s.Name() != "fcfs" {
		t.Fatalf("empty scheduler name not fcfs: %v %v", s, err)
	}
	if _, err := NewScheduler("lifo", 4); err == nil {
		t.Fatal("unknown scheduler accepted")
	}
}

func TestFCFSPreservesArrivalOrder(t *testing.T) {
	s, err := NewScheduler("fcfs", 16)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// Same priority throughout: fcfs must be pure FIFO regardless of class
	// or cost.
	for i := uint64(1); i <= 8; i++ {
		class := Interactive
		if i%2 == 0 {
			class = Batch
		}
		if !s.Push(schedJob(i, class, Normal, float64(100-i))) {
			t.Fatalf("push %d shed", i)
		}
	}
	for i, j := range popAll(t, s, 8) {
		if j.Seq != uint64(i+1) {
			t.Fatalf("fcfs popped seq %d at position %d", j.Seq, i)
		}
	}
}

func TestPriorityNeverInvertsClasses(t *testing.T) {
	s, err := NewScheduler("priority", 16)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// All jobs pushed before any pop ("equal arrival" from the scheduler's
	// point of view): every interactive job must pop before every batch job,
	// and within a class arrival order holds.
	jobs := []*Job{
		schedJob(1, Batch, Normal, 5),
		schedJob(2, Interactive, Normal, 50),
		schedJob(3, Batch, High, 1),
		schedJob(4, Interactive, Low, 50),
		schedJob(5, Interactive, Normal, 9),
	}
	for _, j := range jobs {
		if !s.Push(j) {
			t.Fatalf("push %d shed", j.Seq)
		}
	}
	got := popAll(t, s, len(jobs))
	// Interactive before batch always; within a class admission priority,
	// then arrival: interactive normal-2, normal-5, low-4; batch high-3,
	// normal-1.  Cost never matters to this policy.
	want := []uint64{2, 5, 4, 3, 1}
	for i, j := range got {
		if j.Seq != want[i] {
			seqs := make([]uint64, len(got))
			for k, g := range got {
				seqs[k] = g.Seq
			}
			t.Fatalf("priority pop order %v, want %v", seqs, want)
		}
	}
}

func TestSJFDeterministicUnderCostTies(t *testing.T) {
	// Equal costs must pop in admission order, every time.
	for trial := 0; trial < 5; trial++ {
		s, err := NewScheduler("sjf", 16)
		if err != nil {
			t.Fatal(err)
		}
		for i := uint64(1); i <= 6; i++ {
			if !s.Push(schedJob(i, Batch, Normal, 7.5)) {
				t.Fatalf("push %d shed", i)
			}
		}
		for i, j := range popAll(t, s, 6) {
			if j.Seq != uint64(i+1) {
				t.Fatalf("trial %d: sjf tie-break popped seq %d at position %d", trial, j.Seq, i)
			}
		}
		s.Close()
	}
}

func TestSJFOrdersByCost(t *testing.T) {
	s, err := NewScheduler("sjf", 16)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	costs := []float64{9, 1, 4, 16, 0.5}
	for i, c := range costs {
		if !s.Push(schedJob(uint64(i+1), Batch, Normal, c)) {
			t.Fatalf("push %d shed", i+1)
		}
	}
	prev := -1.0
	for i, j := range popAll(t, s, len(costs)) {
		if j.Cost < prev {
			t.Fatalf("cost inversion at position %d: %g after %g", i, j.Cost, prev)
		}
		prev = j.Cost
	}
}

func TestSchedulerShedsAtCapacity(t *testing.T) {
	for _, name := range SchedulerNames() {
		s, err := NewScheduler(name, 2)
		if err != nil {
			t.Fatal(err)
		}
		if !s.Push(schedJob(1, Batch, Normal, 1)) || !s.Push(schedJob(2, Batch, Normal, 1)) {
			t.Fatalf("%s shed under capacity", name)
		}
		if s.Push(schedJob(3, Batch, Normal, 1)) {
			t.Fatalf("%s accepted past capacity", name)
		}
		if s.Depth() != 2 {
			t.Fatalf("%s depth %d, want 2", name, s.Depth())
		}
		s.Close()
		if s.Push(schedJob(4, Batch, Normal, 1)) {
			t.Fatalf("%s accepted after close", name)
		}
	}
}

func TestSchedulerDrainCompletesAcceptedJobs(t *testing.T) {
	// Under every policy: concurrent pushers and poppers, then Close; every
	// accepted job must be popped exactly once and Pop must then report
	// drained.  This is the shape the server relies on during Drain.
	for _, name := range SchedulerNames() {
		t.Run(name, func(t *testing.T) {
			s, err := NewScheduler(name, 1024)
			if err != nil {
				t.Fatal(err)
			}
			const pushers, perPusher, poppers = 4, 50, 3
			var accepted sync.Map
			var pushWG sync.WaitGroup
			for p := 0; p < pushers; p++ {
				pushWG.Add(1)
				go func(p int) {
					defer pushWG.Done()
					for i := 0; i < perPusher; i++ {
						seq := uint64(p*perPusher + i + 1)
						if s.Push(schedJob(seq, SLOClass(i%2), Priority(i%3), float64(i))) {
							accepted.Store(seq, true)
						}
					}
				}(p)
			}
			popped := make(chan uint64, pushers*perPusher)
			var popWG sync.WaitGroup
			for p := 0; p < poppers; p++ {
				popWG.Add(1)
				go func() {
					defer popWG.Done()
					for {
						j, ok := s.Pop()
						if !ok {
							return
						}
						popped <- j.Seq
					}
				}()
			}
			pushWG.Wait()
			s.Close()
			popWG.Wait()
			close(popped)
			seen := make(map[uint64]int)
			for seq := range popped {
				seen[seq]++
			}
			accepted.Range(func(k, _ any) bool {
				if seen[k.(uint64)] != 1 {
					t.Errorf("%s: accepted seq %d popped %d times", name, k, seen[k.(uint64)])
				}
				delete(seen, k.(uint64))
				return true
			})
			for seq := range seen {
				t.Errorf("%s: popped seq %d that was never accepted", name, seq)
			}
			if _, ok := s.Pop(); ok {
				t.Fatalf("%s: Pop returned a job after drain", name)
			}
		})
	}
}

func TestClassByName(t *testing.T) {
	cases := []struct {
		name  string
		prio  Priority
		want  SLOClass
		valid bool
	}{
		{"", High, Interactive, true},
		{"", Normal, Batch, true},
		{"", Low, Batch, true},
		{"interactive", Low, Interactive, true},
		{"batch", High, Batch, true},
		{"bulk", Normal, 0, false},
		{"INTERACTIVE", Normal, 0, false},
	}
	for _, tc := range cases {
		got, ok := ClassByName(tc.name, tc.prio)
		if ok != tc.valid || (ok && got != tc.want) {
			t.Fatalf("ClassByName(%q, %v) = %v, %v; want %v, %v",
				tc.name, tc.prio, got, ok, tc.want, tc.valid)
		}
	}
	if Interactive.String() != "interactive" || Batch.String() != "batch" {
		t.Fatal("SLOClass names wrong")
	}
	if SLOClass(9).String() != "invalid" {
		t.Fatal("out-of-range SLOClass name")
	}
}
