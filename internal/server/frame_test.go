package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"agcm/internal/frame"
)

// TestFrameContentNegotiation: a client sending Accept:
// application/x-agcm-frame receives the raw response frame — on the miss
// path and the hit path alike — whose embedded JSON section is
// byte-identical to what a plain JSON client gets, and whose binary report
// section decodes to the same values the JSON report carries.
func TestFrameContentNegotiation(t *testing.T) {
	s := mustNew(t, Options{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Drain(context.Background())

	body := reqJSON([2]int{1, 2}, "fft", 1)

	// Miss path, frame client.
	req, err := http.NewRequest("POST", ts.URL+"/v1/run", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept", FrameContentType)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	rawFrame, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("frame request: status %d err %v", resp.StatusCode, err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != FrameContentType {
		t.Fatalf("Content-Type = %q, want %q", ct, FrameContentType)
	}

	// Hit path, JSON client: the embedded section must be these bytes.
	st, h, jsonBody := postRun(t, ts.URL, body)
	if st != 200 {
		t.Fatalf("json request: status %d: %s", st, jsonBody)
	}
	if got := h.Get("X-Agcmd-Cache"); got != "hit" {
		t.Fatalf("disposition %q, want hit", got)
	}
	emb, err := JSONBody(rawFrame)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(emb, jsonBody) {
		t.Fatalf("embedded JSON section differs from JSON wire body:\n frame: %s\n json:  %s", emb, jsonBody)
	}

	// The binary report section decodes to the same report the JSON body
	// carries — random access, no JSON parsing.
	var wire struct {
		Key    string     `json:"key"`
		Report ReportWire `json:"report"`
	}
	if err := json.Unmarshal(jsonBody, &wire); err != nil {
		t.Fatal(err)
	}
	dec, _, _, err := DecodeReportFrame(rawFrame, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dec, wire.Report) {
		t.Fatalf("frame report != JSON report:\n frame: %+v\n json:  %+v", dec, wire.Report)
	}

	// Frame client on the hit path gets byte-identical frame bytes.
	req2, _ := http.NewRequest("POST", ts.URL+"/v1/run", strings.NewReader(body))
	req2.Header.Set("Accept", FrameContentType)
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	rawFrame2, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if !bytes.Equal(rawFrame, rawFrame2) {
		t.Fatal("hit-path frame differs from miss-path frame")
	}
	if runs := s.Runs(); runs != 1 {
		t.Fatalf("Runs() = %d, want 1", runs)
	}
}

// TestDiskTierWarmRestart: a daemon killed and restarted over the same
// cache directory serves byte-identical bodies from the disk tier without
// re-running anything — the warm-restart property the gateway-visible
// drill in the cluster suite asserts end to end.
func TestDiskTierWarmRestart(t *testing.T) {
	dir := t.TempDir()
	body := reqJSON([2]int{1, 2}, "fft", 2)

	s1 := mustNew(t, Options{Workers: 1, CacheDir: dir})
	ts1 := httptest.NewServer(s1.Handler())
	st, _, b1 := postRun(t, ts1.URL, body)
	if st != 200 {
		t.Fatalf("seed run: status %d: %s", st, b1)
	}
	ts1.Close()
	if err := s1.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}

	// The "restarted" daemon: same directory, empty memory tier.
	s2 := mustNew(t, Options{Workers: 1, CacheDir: dir})
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	defer s2.Drain(context.Background())

	st2, h2, b2 := postRun(t, ts2.URL, body)
	if st2 != 200 {
		t.Fatalf("warm-restart run: status %d: %s", st2, b2)
	}
	if got := h2.Get("X-Agcmd-Cache"); got != "disk-hit" {
		t.Fatalf("disposition %q, want disk-hit", got)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("warm restart served different bytes")
	}
	if runs := s2.Runs(); runs != 0 {
		t.Fatalf("Runs() = %d after restart, want 0 (disk must answer)", runs)
	}
	if got := s2.metrics.Request("disk_hit"); got != 1 {
		t.Fatalf("disk_hit = %d, want 1", got)
	}

	// The disk hit promoted the frame into memory: next request is a plain
	// hit.
	st3, h3, b3 := postRun(t, ts2.URL, body)
	if st3 != 200 || h3.Get("X-Agcmd-Cache") != "hit" || !bytes.Equal(b1, b3) {
		t.Fatalf("post-promotion request: status %d disposition %q", st3, h3.Get("X-Agcmd-Cache"))
	}

	// A third cold daemon answers peeks straight from disk too — the
	// gateway's degraded path survives the restart.
	var wire struct {
		Key string `json:"key"`
	}
	if err := json.Unmarshal(b1, &wire); err != nil || wire.Key == "" {
		t.Fatalf("response has no key: %v", err)
	}
	s3 := mustNew(t, Options{Workers: 1, CacheDir: dir})
	defer s3.Drain(context.Background())
	rec := httptest.NewRecorder()
	s3.handleCachePeek(rec, httptest.NewRequest("GET", "/v1/cache/"+wire.Key, nil))
	if rec.Code != 200 || !bytes.Equal(rec.Body.Bytes(), b1) {
		t.Fatalf("cold peek: status %d", rec.Code)
	}
	if got := rec.Header().Get("X-Agcmd-Cache"); got != "peek-disk" {
		t.Fatalf("cold peek disposition %q, want peek-disk", got)
	}
	if s3.Runs() != 0 {
		t.Fatal("peek ran a simulation")
	}
}

// countingWriter is a ResponseWriter that counts Write calls — the
// single-write audit's instrument.
type countingWriter struct {
	h      http.Header
	status int
	writes int
	last   []byte
}

func (w *countingWriter) Header() http.Header         { return w.h }
func (w *countingWriter) WriteHeader(c int)           { w.status = c }
func (w *countingWriter) Write(p []byte) (int, error) { w.writes++; w.last = p; return len(p), nil }

// TestCacheHitSingleWriteAndAllocBudget audits the hot replay paths: a
// cache hit is exactly one ResponseWriter.Write of the stored bytes (no
// re-marshal, no copies), and serving a peek hit stays within two heap
// allocations — the two header values; the frame machinery itself is
// allocation-free.
func TestCacheHitSingleWriteAndAllocBudget(t *testing.T) {
	s := mustNew(t, Options{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Drain(context.Background())

	body := reqJSON([2]int{1, 2}, "fft", 1)
	st, _, jsonBody := postRun(t, ts.URL, body)
	if st != 200 {
		t.Fatalf("seed run: %d %s", st, jsonBody)
	}
	var wire struct {
		Key string `json:"key"`
	}
	if err := json.Unmarshal(jsonBody, &wire); err != nil || wire.Key == "" {
		t.Fatalf("response has no key: %v", err)
	}

	// Full /v1/run hit path: one Write, the stored bytes.
	cw := &countingWriter{h: make(http.Header)}
	s.handleRun(cw, httptest.NewRequest("POST", "/v1/run", strings.NewReader(body)))
	if cw.status != 200 || cw.writes != 1 {
		t.Fatalf("hit path: status %d writes %d, want 200/1", cw.status, cw.writes)
	}
	if !bytes.Equal(cw.last, jsonBody) {
		t.Fatal("hit path wrote different bytes than the original response")
	}

	// Peek hit path, steady state: ≤2 allocs per served hit.
	preq := httptest.NewRequest("GET", "/v1/cache/"+wire.Key, nil)
	bad := false
	allocs := testing.AllocsPerRun(200, func() {
		cw.writes = 0
		s.handleCachePeek(cw, preq)
		if cw.status != 200 || cw.writes != 1 {
			bad = true
		}
	})
	if bad {
		t.Fatal("peek hit did not produce exactly one 200 write")
	}
	if allocs > 2 {
		t.Fatalf("peek hit allocates %v times per serve, want <= 2", allocs)
	}
}

// TestDiskTierRejectsUnknownKeys: disk fallthrough never touches the
// filesystem for a key that is not a well-formed content address.
func TestDiskTierRejectsUnknownKeys(t *testing.T) {
	s := mustNew(t, Options{Workers: 1, CacheDir: t.TempDir()})
	defer s.Drain(context.Background())
	for _, key := range []string{"..%2f..%2fetc", "short", strings.Repeat("Z", 64)} {
		rec := httptest.NewRecorder()
		s.handleCachePeek(rec, httptest.NewRequest("GET", "/v1/cache/"+key, nil))
		if rec.Code != http.StatusNotFound {
			t.Errorf("peek %q: status %d, want 404", key, rec.Code)
		}
	}
}

// TestFrameStoreRefusesNonFrames guards the server/store contract: the
// disk tier only ever holds parseable frames, so anything Get returns is
// servable as-is.
func TestFrameStoreRefusesNonFrames(t *testing.T) {
	st, err := frame.OpenStore(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put(strings.Repeat("a", 64), []byte(`{"not":"a frame"}`)); err == nil {
		t.Fatal("store accepted raw JSON bytes")
	}
}

func BenchmarkCacheHit(b *testing.B) {
	s, err := New(Options{Workers: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Drain(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	body := reqJSON([2]int{1, 2}, "fft", 1)
	resp, err := http.Post(ts.URL+"/v1/run", "application/json", strings.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var wire struct {
		Key string `json:"key"`
	}
	if err := json.Unmarshal(raw, &wire); err != nil {
		b.Fatal(err)
	}
	cw := &countingWriter{h: make(http.Header)}
	preq := httptest.NewRequest("GET", "/v1/cache/"+wire.Key, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.handleCachePeek(cw, preq)
	}
}
