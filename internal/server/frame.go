package server

import (
	"fmt"
	"net/http"
	"strings"

	"agcm/internal/core"
	"agcm/internal/frame"
)

// The daemon's canonical result representation is a frame.Frame of type
// frame.TypeResponse.  One frame carries both wire forms of a finished run,
// so the caches (memory and disk) hold a single byte string per key and a
// hit of either content type is a single Write of stored bytes:
//
//	section 1  the exact JSON response body (what Accept: application/json
//	           clients receive — byte-identical to the pre-frame wire form)
//	section 2  the job key (lowercase hex)
//	section 3  run meta: u32 steps
//	section 4  the canonical config JSON
//	section 5  the report, fixed-layout binary: u32 ranks, u32 steps,
//	           u32 steps_per_day, 12 float64 scalars in reportJSON field
//	           order, then the two length-prefixed load vectors
//
// Frame clients (Accept: application/x-agcm-frame) receive the whole frame
// and can decode any one section without unpacking the rest; JSON clients
// receive section 1 verbatim.  Because the JSON bytes are embedded, a
// restarted daemon replaying frames from the disk tier serves bodies that
// are byte-identical to what the original process produced.
const (
	respSecJSON   = 1
	respSecKey    = 2
	respSecMeta   = 3
	respSecConfig = 4
	respSecReport = 5
)

// FrameContentType is the content-negotiation token for raw response
// frames: requests whose Accept header includes it receive the frame
// itself instead of the embedded JSON body.
const FrameContentType = "application/x-agcm-frame"

// wantsFrame reports whether the request negotiated the raw-frame form.
func wantsFrame(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Accept"), FrameContentType)
}

// encodeResponseFrame renders a finished run as the canonical response
// frame.  The embedded JSON section is produced by responseJSON, so the
// JSON wire form cannot drift from the binary one — they are sealed into
// the same content-addressed bytes.
func encodeResponseFrame(key string, canonical []byte, steps int, rep *core.Report) ([]byte, error) {
	jsonBody, err := responseJSON(key, canonical, steps, rep)
	if err != nil {
		return nil, err
	}
	var b frame.Builder
	b.Begin(respSecJSON)
	b.Bytes(jsonBody)
	b.Begin(respSecKey)
	b.Bytes([]byte(key))
	b.Begin(respSecMeta)
	b.Uint32(uint32(steps))
	b.Begin(respSecConfig)
	b.Bytes(canonical)
	b.Begin(respSecReport)
	b.Uint32(uint32(rep.Ranks))
	b.Uint32(uint32(rep.Steps))
	b.Uint32(uint32(rep.StepsPerDay))
	b.Float64(rep.FilterTime)
	b.Float64(rep.FDTime)
	b.Float64(rep.CommTime)
	b.Float64(rep.Dynamics)
	b.Float64(rep.PhysicsTime)
	b.Float64(rep.Total)
	b.Float64(core.Imbalance(rep.PhysicsLoads))
	b.Float64(core.Imbalance(rep.FilterLoads))
	b.Float64(rep.MessagesPerStep)
	b.Float64(rep.BytesPerStep)
	b.Float64(rep.MaxWaitShare)
	b.Float64(rep.MaxAbsH)
	b.Float64s(rep.PhysicsLoads)
	b.Float64s(rep.FilterLoads)
	return b.Finish(frame.TypeResponse)
}

// DecodeReportFrame decodes the report section of a response frame without
// touching the JSON section — the offset-indexed random access the format
// exists for.  loads buffers may be passed in to make decoding
// allocation-free; they are appended to.
func DecodeReportFrame(frameBytes []byte, physicsLoads, filterLoads []float64) (ReportWire, []float64, []float64, error) {
	var rj ReportWire
	f, err := frame.Parse(frameBytes)
	if err != nil {
		return rj, physicsLoads, filterLoads, err
	}
	sec, ok := f.Section(respSecReport)
	if !ok {
		return rj, physicsLoads, filterLoads, fmt.Errorf("server: response frame has no report section")
	}
	c := frame.NewCursor(sec)
	rj.Ranks = int(c.Uint32())
	rj.Steps = int(c.Uint32())
	rj.StepsPerDay = int(c.Uint32())
	rj.FilterTime = c.Float64()
	rj.FDTime = c.Float64()
	rj.CommTime = c.Float64()
	rj.Dynamics = c.Float64()
	rj.PhysicsTime = c.Float64()
	rj.Total = c.Float64()
	rj.PhysicsImbalance = c.Float64()
	rj.FilterImbalance = c.Float64()
	rj.MessagesPerStep = c.Float64()
	rj.BytesPerStep = c.Float64()
	rj.MaxWaitShare = c.Float64()
	rj.MaxAbsH = c.Float64()
	physicsLoads = c.Float64s(physicsLoads)
	filterLoads = c.Float64s(filterLoads)
	if err := c.Err(); err != nil {
		return rj, physicsLoads, filterLoads, err
	}
	rj.PhysicsLoads = physicsLoads
	rj.FilterLoads = filterLoads
	return rj, physicsLoads, filterLoads, nil
}

// JSONBody returns the embedded JSON response body of a response frame —
// the bytes a JSON client receives — as a zero-copy subslice.
func JSONBody(frameBytes []byte) ([]byte, error) {
	f, err := frame.Parse(frameBytes)
	if err != nil {
		return nil, err
	}
	sec, ok := f.Section(respSecJSON)
	if !ok {
		return nil, fmt.Errorf("server: response frame has no JSON section")
	}
	return sec, nil
}

// writeNegotiated serves a cached response frame: the raw frame to clients
// that negotiated it, the embedded JSON section otherwise.  Either way the
// reply is exactly one Write of stored bytes — nothing is re-marshaled on
// a hit.
func writeNegotiated(w http.ResponseWriter, r *http.Request, status int, frameBytes []byte) {
	if wantsFrame(r) {
		w.Header().Set("Content-Type", FrameContentType)
		w.WriteHeader(status)
		w.Write(frameBytes)
		return
	}
	f, err := frame.Parse(frameBytes)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorBody("cached frame corrupt: "+err.Error()))
		return
	}
	body, ok := f.Section(respSecJSON)
	if !ok {
		writeJSON(w, http.StatusInternalServerError, errorBody("cached frame has no JSON section"))
		return
	}
	writeJSON(w, status, body)
}
