package server

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
)

// jobBuckets are the latency histogram's upper bounds in seconds.  Fixed at
// compile time so the /metrics emission order never depends on runtime
// state.
var jobBuckets = []float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10, 30, 60}

// metrics holds the daemon's counters and the job-latency histogram.  One
// mutex guards everything: increments are nanoseconds against simulation
// runs that take milliseconds to minutes, and a single lock makes every
// /metrics scrape an internally consistent snapshot.
type metrics struct {
	mu       sync.Mutex
	requests map[string]uint64 // by result label: hit, miss, coalesced, shed, ...
	runs     uint64            // simulations actually executed
	runErrs  uint64            // runs that returned an error (timeouts included)
	buckets  []uint64          // one count per jobBuckets bound, cumulative on emit
	overflow uint64            // beyond the last bound (the +Inf bucket's share)
	sum      float64
	count    uint64

	// Per-SLO-class accounting.  classRequests counts every validated
	// request by class (hits, coalesced joins and sheds included, so a load
	// client's per-class ledger reconciles exactly); classJobs holds the
	// executed-job latency histogram plus the wait/exec sums the fairness
	// gauge is derived from.
	classRequests map[string]uint64
	classJobs     map[string]*classHist
}

// classHist is one SLO class's executed-job accounting: a latency histogram
// over jobBuckets (queue wait + execution) and the wait/exec sums behind the
// slowdown gauge.
type classHist struct {
	buckets  []uint64
	overflow uint64
	sum      float64
	count    uint64
	waitSum  float64
	execSum  float64
}

func newMetrics() *metrics {
	return &metrics{
		requests:      make(map[string]uint64),
		buckets:       make([]uint64, len(jobBuckets)),
		classRequests: make(map[string]uint64),
		classJobs:     make(map[string]*classHist),
	}
}

// IncRequest counts one request with the given outcome label.
func (m *metrics) IncRequest(result string) {
	m.mu.Lock()
	m.requests[result]++
	m.mu.Unlock()
}

// Request returns the count for one outcome label (test and reconcile hook).
func (m *metrics) Request(result string) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.requests[result]
}

// IncRun counts one executed simulation; failed reports whether it errored.
func (m *metrics) IncRun(failed bool) {
	m.mu.Lock()
	m.runs++
	if failed {
		m.runErrs++
	}
	m.mu.Unlock()
}

// IncClass counts one validated request in its SLO class.
func (m *metrics) IncClass(class string) {
	m.mu.Lock()
	m.classRequests[class]++
	m.mu.Unlock()
}

// ClassRequests returns one class's validated-request count (reconcile hook).
func (m *metrics) ClassRequests(class string) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.classRequests[class]
}

// ObserveClassJob records one executed job's queue wait and execution time
// against its SLO class; the histogram observes their sum (the job's
// end-to-end latency inside the daemon).
func (m *metrics) ObserveClassJob(class string, waitSeconds, execSeconds float64) {
	m.mu.Lock()
	h := m.classJobs[class]
	if h == nil {
		h = &classHist{buckets: make([]uint64, len(jobBuckets))}
		m.classJobs[class] = h
	}
	total := waitSeconds + execSeconds
	placed := false
	for i, b := range jobBuckets {
		if total <= b {
			h.buckets[i]++
			placed = true
			break
		}
	}
	if !placed {
		h.overflow++
	}
	h.sum += total
	h.count++
	h.waitSum += waitSeconds
	h.execSum += execSeconds
	m.mu.Unlock()
}

// ObserveJob records one job's execution latency in seconds.
func (m *metrics) ObserveJob(seconds float64) {
	m.mu.Lock()
	placed := false
	for i, b := range jobBuckets {
		if seconds <= b {
			m.buckets[i]++
			placed = true
			break
		}
	}
	if !placed {
		m.overflow++
	}
	m.sum += seconds
	m.count++
	m.mu.Unlock()
}

// gauges is the point-in-time state the server contributes to a scrape.
type gauges struct {
	QueueDepth   int
	Inflight     int
	CacheEntries int
	CacheEvicted uint64
	Draining     bool
	// Scheduler is the admission policy's name, emitted as an info metric.
	Scheduler string

	// Disk-tier state; emitted only when DiskEnabled, so a daemon without
	// a cache directory scrapes exactly as before.
	DiskEnabled bool
	DiskEntries int
	DiskBytes   int64
	DiskEvicted uint64
	DiskCorrupt uint64
}

func fmtFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteText renders the Prometheus text exposition.  Families appear in a
// fixed order and the label values of each family are emitted sorted, so
// two scrapes of identical state are byte-identical.
func (m *metrics) WriteText(w io.Writer, g gauges) {
	m.mu.Lock()
	defer m.mu.Unlock()

	fmt.Fprintf(w, "# HELP agcmd_requests_total Simulation requests by outcome.\n")
	fmt.Fprintf(w, "# TYPE agcmd_requests_total counter\n")
	labels := make([]string, 0, len(m.requests))
	for k := range m.requests {
		labels = append(labels, k)
	}
	sort.Strings(labels)
	for _, k := range labels {
		fmt.Fprintf(w, "agcmd_requests_total{result=%q} %d\n", k, m.requests[k])
	}

	fmt.Fprintf(w, "# HELP agcmd_runs_total Simulations executed (cache misses that reached a worker).\n")
	fmt.Fprintf(w, "# TYPE agcmd_runs_total counter\n")
	fmt.Fprintf(w, "agcmd_runs_total %d\n", m.runs)
	fmt.Fprintf(w, "# HELP agcmd_run_errors_total Executed simulations that returned an error.\n")
	fmt.Fprintf(w, "# TYPE agcmd_run_errors_total counter\n")
	fmt.Fprintf(w, "agcmd_run_errors_total %d\n", m.runErrs)

	fmt.Fprintf(w, "# HELP agcmd_queue_depth Jobs admitted but not yet running.\n")
	fmt.Fprintf(w, "# TYPE agcmd_queue_depth gauge\n")
	fmt.Fprintf(w, "agcmd_queue_depth %d\n", g.QueueDepth)
	fmt.Fprintf(w, "# HELP agcmd_inflight_jobs Jobs currently executing on workers.\n")
	fmt.Fprintf(w, "# TYPE agcmd_inflight_jobs gauge\n")
	fmt.Fprintf(w, "agcmd_inflight_jobs %d\n", g.Inflight)
	fmt.Fprintf(w, "# HELP agcmd_cache_entries Result-cache entries resident.\n")
	fmt.Fprintf(w, "# TYPE agcmd_cache_entries gauge\n")
	fmt.Fprintf(w, "agcmd_cache_entries %d\n", g.CacheEntries)
	fmt.Fprintf(w, "# HELP agcmd_cache_evictions_total Result-cache LRU evictions.\n")
	fmt.Fprintf(w, "# TYPE agcmd_cache_evictions_total counter\n")
	fmt.Fprintf(w, "agcmd_cache_evictions_total %d\n", g.CacheEvicted)
	drain := 0
	if g.Draining {
		drain = 1
	}
	fmt.Fprintf(w, "# HELP agcmd_draining Whether the daemon is draining (1) or serving (0).\n")
	fmt.Fprintf(w, "# TYPE agcmd_draining gauge\n")
	fmt.Fprintf(w, "agcmd_draining %d\n", drain)
	if g.DiskEnabled {
		fmt.Fprintf(w, "# HELP agcmd_disk_cache_entries Disk-tier frames resident.\n")
		fmt.Fprintf(w, "# TYPE agcmd_disk_cache_entries gauge\n")
		fmt.Fprintf(w, "agcmd_disk_cache_entries %d\n", g.DiskEntries)
		fmt.Fprintf(w, "# HELP agcmd_disk_cache_bytes Disk-tier bytes resident.\n")
		fmt.Fprintf(w, "# TYPE agcmd_disk_cache_bytes gauge\n")
		fmt.Fprintf(w, "agcmd_disk_cache_bytes %d\n", g.DiskBytes)
		fmt.Fprintf(w, "# HELP agcmd_disk_cache_evictions_total Disk-tier budget evictions.\n")
		fmt.Fprintf(w, "# TYPE agcmd_disk_cache_evictions_total counter\n")
		fmt.Fprintf(w, "agcmd_disk_cache_evictions_total %d\n", g.DiskEvicted)
		fmt.Fprintf(w, "# HELP agcmd_disk_cache_corrupt_total Disk-tier frames dropped for failing validation.\n")
		fmt.Fprintf(w, "# TYPE agcmd_disk_cache_corrupt_total counter\n")
		fmt.Fprintf(w, "agcmd_disk_cache_corrupt_total %d\n", g.DiskCorrupt)
	}

	fmt.Fprintf(w, "# HELP agcmd_job_seconds Simulation execution latency.\n")
	fmt.Fprintf(w, "# TYPE agcmd_job_seconds histogram\n")
	cum := uint64(0)
	for i, b := range jobBuckets {
		cum += m.buckets[i]
		fmt.Fprintf(w, "agcmd_job_seconds_bucket{le=%q} %d\n", fmtFloat(b), cum)
	}
	fmt.Fprintf(w, "agcmd_job_seconds_bucket{le=\"+Inf\"} %d\n", m.count)
	fmt.Fprintf(w, "agcmd_job_seconds_sum %s\n", fmtFloat(m.sum))
	fmt.Fprintf(w, "agcmd_job_seconds_count %d\n", m.count)

	// Per-class families are appended after the historical layout so a
	// scrape of a daemon that never saw an SLO-classed request still starts
	// with exactly the bytes it always produced.
	fmt.Fprintf(w, "# HELP agcmd_scheduler_info Admission scheduler policy (always 1).\n")
	fmt.Fprintf(w, "# TYPE agcmd_scheduler_info gauge\n")
	fmt.Fprintf(w, "agcmd_scheduler_info{scheduler=%q} 1\n", g.Scheduler)
	fmt.Fprintf(w, "# HELP agcmd_class_requests_total Validated requests by SLO class.\n")
	fmt.Fprintf(w, "# TYPE agcmd_class_requests_total counter\n")
	classes := make([]string, 0, len(m.classRequests))
	for k := range m.classRequests {
		classes = append(classes, k)
	}
	sort.Strings(classes)
	for _, k := range classes {
		fmt.Fprintf(w, "agcmd_class_requests_total{class=%q} %d\n", k, m.classRequests[k])
	}
	fmt.Fprintf(w, "# HELP agcmd_class_job_seconds Executed-job latency (queue wait + execution) by SLO class.\n")
	fmt.Fprintf(w, "# TYPE agcmd_class_job_seconds histogram\n")
	jobClasses := make([]string, 0, len(m.classJobs))
	for k := range m.classJobs {
		jobClasses = append(jobClasses, k)
	}
	sort.Strings(jobClasses)
	maxSlowdown := 0.0
	for _, k := range jobClasses {
		h := m.classJobs[k]
		cum := uint64(0)
		for i, b := range jobBuckets {
			cum += h.buckets[i]
			fmt.Fprintf(w, "agcmd_class_job_seconds_bucket{class=%q,le=%q} %d\n", k, fmtFloat(b), cum)
		}
		fmt.Fprintf(w, "agcmd_class_job_seconds_bucket{class=%q,le=\"+Inf\"} %d\n", k, h.count)
		fmt.Fprintf(w, "agcmd_class_job_seconds_sum{class=%q} %s\n", k, fmtFloat(h.sum))
		fmt.Fprintf(w, "agcmd_class_job_seconds_count{class=%q} %d\n", k, h.count)
		if h.execSum > 0 {
			if s := (h.waitSum + h.execSum) / h.execSum; s > maxSlowdown {
				maxSlowdown = s
			}
		}
	}
	fmt.Fprintf(w, "# HELP agcmd_max_class_slowdown Max over classes of (wait+exec)/exec — the fairness metric.\n")
	fmt.Fprintf(w, "# TYPE agcmd_max_class_slowdown gauge\n")
	fmt.Fprintf(w, "agcmd_max_class_slowdown %s\n", fmtFloat(maxSlowdown))
}

// AvgJobSeconds returns the mean observed job latency (0 before any job):
// the admission layer's input for the Retry-After estimate.
func (m *metrics) AvgJobSeconds() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.count == 0 {
		return 0
	}
	return m.sum / float64(m.count)
}
