module agcm

go 1.22
