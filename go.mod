module agcm

go 1.22

// Zero third-party dependencies, on purpose: the simulator and the
// experiments reproduce paper numbers and must build hermetically.
//
// internal/analysis deliberately mirrors the golang.org/x/tools/go/analysis
// API (Analyzer/Pass/Diagnostic) and cmd/agcmlint speaks the unitchecker
// `go vet -vettool` protocol, so the tree can swap to the upstream module by
// adding `require golang.org/x/tools` here and deleting the small framework
// in internal/analysis/analysis.go — nothing else changes.  The dependency
// is not declared today because this tree builds in offline environments
// where an unfetchable require line would break `go build ./...`; CI's
// `go mod tidy && git diff --exit-code go.mod` check keeps this file honest
// either way.
